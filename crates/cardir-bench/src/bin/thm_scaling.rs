//! E4/E5 — Theorems 1 and 2: both algorithms are linear in the total
//! edge count. Prints ns/edge across a doubling sweep; linearity shows
//! as a flat column. The clipping baseline is included for reference.
//!
//! Run with: `cargo run --release -p cardir-bench --bin thm_scaling`
//! Pass `--json PATH` to additionally write one JSON-lines record per
//! sweep point (plus a summary line) for regression tracking.

use cardir_bench::{calibrate_iters, scaling_pair, time_mean, SEED};
use cardir_core::{clipping_cdr, compute_cdr, compute_cdr_pct};
use cardir_telemetry::{Json, JsonLines};
use std::hint::black_box;
use std::time::Duration;

fn main() {
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            json_path = Some(args.next().unwrap_or_else(|| {
                eprintln!("--json requires a path");
                std::process::exit(2);
            }));
        } else {
            eprintln!("usage: thm_scaling [--json PATH]");
            std::process::exit(2);
        }
    }
    let mut sink = json_path.as_deref().map(|path| {
        let file = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(1);
        });
        JsonLines::new(std::io::BufWriter::new(file))
    });

    println!("E4/E5 — linear-time scaling (Theorems 1 and 2)\n");
    println!(
        "| {:>8} | {:>14} | {:>10} | {:>14} | {:>10} | {:>14} | {:>10} |",
        "edges", "CDR", "ns/edge", "CDR%", "ns/edge", "clipping", "ns/edge"
    );
    println!(
        "|{}|{}|{}|{}|{}|{}|{}|",
        "-".repeat(10),
        "-".repeat(16),
        "-".repeat(12),
        "-".repeat(16),
        "-".repeat(12),
        "-".repeat(16),
        "-".repeat(12)
    );

    let mut per_edge_first = None;
    let mut per_edge_last = None;
    for edges in cardir_workloads::sweep::doubling(64, 65536) {
        let (a, b) = scaling_pair(edges, SEED);
        let target = Duration::from_millis(20);

        let iters = calibrate_iters(target, || {
            black_box(compute_cdr(black_box(&a), black_box(&b)));
        });
        let t_cdr = time_mean(iters, || {
            black_box(compute_cdr(black_box(&a), black_box(&b)));
        });

        let iters = calibrate_iters(target, || {
            black_box(compute_cdr_pct(black_box(&a), black_box(&b)));
        });
        let t_pct = time_mean(iters, || {
            black_box(compute_cdr_pct(black_box(&a), black_box(&b)));
        });

        let iters = calibrate_iters(target, || {
            black_box(clipping_cdr(black_box(&a), black_box(&b)));
        });
        let t_clip = time_mean(iters, || {
            black_box(clipping_cdr(black_box(&a), black_box(&b)));
        });

        let per_edge = |d: Duration| d.as_nanos() as f64 / edges as f64;
        println!(
            "| {:>8} | {:>14.2?} | {:>10.2} | {:>14.2?} | {:>10.2} | {:>14.2?} | {:>10.2} |",
            edges,
            t_cdr,
            per_edge(t_cdr),
            t_pct,
            per_edge(t_pct),
            t_clip,
            per_edge(t_clip),
        );
        if let Some(sink) = &mut sink {
            sink.emit(
                "scaling_point",
                Json::obj([
                    ("edges", Json::from(edges)),
                    ("cdr_ns", Json::from(t_cdr.as_nanos().min(u64::MAX as u128) as u64)),
                    ("cdr_ns_per_edge", Json::from(per_edge(t_cdr))),
                    ("pct_ns", Json::from(t_pct.as_nanos().min(u64::MAX as u128) as u64)),
                    ("pct_ns_per_edge", Json::from(per_edge(t_pct))),
                    ("clipping_ns", Json::from(t_clip.as_nanos().min(u64::MAX as u128) as u64)),
                    ("clipping_ns_per_edge", Json::from(per_edge(t_clip))),
                ]),
            )
            .expect("write JSON line");
        }
        if per_edge_first.is_none() {
            per_edge_first = Some(per_edge(t_cdr));
        }
        per_edge_last = Some(per_edge(t_cdr));
    }

    let (first, last) = (per_edge_first.unwrap(), per_edge_last.unwrap());
    println!(
        "\nCompute-CDR ns/edge drift across the sweep: {:.2} → {:.2} (ratio {:.2}; \
         ≈1 confirms linear time)",
        first,
        last,
        last / first
    );
    if let Some(sink) = &mut sink {
        sink.emit(
            "scaling_summary",
            Json::obj([
                ("seed", Json::from(SEED)),
                ("cdr_ns_per_edge_first", Json::from(first)),
                ("cdr_ns_per_edge_last", Json::from(last)),
                ("drift_ratio", Json::from(last / first)),
            ]),
        )
        .expect("write JSON line");
        sink.flush().expect("flush JSON sink");
        println!("wrote {}", json_path.as_deref().unwrap_or_default());
    }
}
