//! E4/E5 — Theorems 1 and 2: both algorithms are linear in the total
//! edge count. Prints ns/edge across a doubling sweep; linearity shows
//! as a flat column. The clipping baseline is included for reference.
//!
//! Run with: `cargo run --release -p cardir-bench --bin thm_scaling`

use cardir_bench::{calibrate_iters, scaling_pair, time_mean, SEED};
use cardir_core::{clipping_cdr, compute_cdr, compute_cdr_pct};
use std::hint::black_box;
use std::time::Duration;

fn main() {
    println!("E4/E5 — linear-time scaling (Theorems 1 and 2)\n");
    println!(
        "| {:>8} | {:>14} | {:>10} | {:>14} | {:>10} | {:>14} | {:>10} |",
        "edges", "CDR", "ns/edge", "CDR%", "ns/edge", "clipping", "ns/edge"
    );
    println!(
        "|{}|{}|{}|{}|{}|{}|{}|",
        "-".repeat(10),
        "-".repeat(16),
        "-".repeat(12),
        "-".repeat(16),
        "-".repeat(12),
        "-".repeat(16),
        "-".repeat(12)
    );

    let mut per_edge_first = None;
    let mut per_edge_last = None;
    for edges in cardir_workloads::sweep::doubling(64, 65536) {
        let (a, b) = scaling_pair(edges, SEED);
        let target = Duration::from_millis(20);

        let iters = calibrate_iters(target, || {
            black_box(compute_cdr(black_box(&a), black_box(&b)));
        });
        let t_cdr = time_mean(iters, || {
            black_box(compute_cdr(black_box(&a), black_box(&b)));
        });

        let iters = calibrate_iters(target, || {
            black_box(compute_cdr_pct(black_box(&a), black_box(&b)));
        });
        let t_pct = time_mean(iters, || {
            black_box(compute_cdr_pct(black_box(&a), black_box(&b)));
        });

        let iters = calibrate_iters(target, || {
            black_box(clipping_cdr(black_box(&a), black_box(&b)));
        });
        let t_clip = time_mean(iters, || {
            black_box(clipping_cdr(black_box(&a), black_box(&b)));
        });

        let per_edge = |d: Duration| d.as_nanos() as f64 / edges as f64;
        println!(
            "| {:>8} | {:>14.2?} | {:>10.2} | {:>14.2?} | {:>10.2} | {:>14.2?} | {:>10.2} |",
            edges,
            t_cdr,
            per_edge(t_cdr),
            t_pct,
            per_edge(t_pct),
            t_clip,
            per_edge(t_clip),
        );
        if per_edge_first.is_none() {
            per_edge_first = Some(per_edge(t_cdr));
        }
        per_edge_last = Some(per_edge(t_cdr));
    }

    let (first, last) = (per_edge_first.unwrap(), per_edge_last.unwrap());
    println!(
        "\nCompute-CDR ns/edge drift across the sweep: {:.2} → {:.2} (ratio {:.2}; \
         ≈1 confirms linear time)",
        first,
        last,
        last / first
    );
}
