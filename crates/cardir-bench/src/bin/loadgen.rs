//! Concurrent load against a live `cardird` server: the "heavy
//! traffic" number ROADMAP item 3 asks for.
//!
//! Boots an in-process server (or targets `--addr`), seeds one session
//! with a star-region map, then drives K persistent connections in
//! parallel. Each connection issues a seeded mix of reads — single-pair
//! relation lookups, full materialisations, conjunctive queries — while
//! one extra writer connection streams edits, so the measured
//! throughput includes snapshot swaps, not just cached reads. Every
//! response is checked; anything but a 2xx counts as an error and the
//! bench exits non-zero, which is what makes the committed numbers a
//! zero-error claim.
//!
//! Latency is recorded per request into the workspace's own telemetry
//! histogram; p50/p95/p99 come from `HistogramSnapshot` like every
//! other bench artifact.
//!
//! Usage: `loadgen [--connections K] [--requests N] [--regions M]
//!                 [--addr HOST:PORT] [--json PATH]`
//! Defaults: K = 8, N = 200 requests per connection, M = 24 regions.
//! `--json` writes one `"type": "server"` record (the `server.*`
//! fields CI gates on via `json_check --require` and `bench_diff`).

use cardir_geometry::{BoundingBox, Point};
use cardir_telemetry::{Json, JsonLines, Registry, DURATION_BOUNDS_NS};
use cardir_workloads::{random_map, SplitMix64};
use cardird::api::region_to_json;
use cardird::{serve, Client, ServerConfig};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const SEED: u64 = 2004;

fn ns(d: std::time::Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

fn main() {
    let mut connections: usize = 8;
    let mut requests: usize = 200;
    let mut regions: usize = 24;
    let mut addr: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--connections" => connections = value("--connections").parse().unwrap_or(0),
            "--requests" => requests = value("--requests").parse().unwrap_or(0),
            "--regions" => regions = value("--regions").parse().unwrap_or(0),
            "--addr" => addr = Some(value("--addr")),
            "--json" => json_path = Some(value("--json")),
            _ => {
                eprintln!(
                    "usage: loadgen [--connections K] [--requests N] [--regions M] \
                     [--addr HOST:PORT] [--json PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    if connections == 0 || requests == 0 || regions < 2 {
        eprintln!("loadgen: need connections >= 1, requests >= 1, regions >= 2");
        std::process::exit(2);
    }

    // Target: an external server, or an in-process one on an ephemeral
    // port (the reproducible default the committed numbers come from).
    let data_dir =
        std::env::temp_dir().join(format!("cardird-loadgen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let (target, handle): (SocketAddr, Option<cardird::ServerHandle>) = match &addr {
        Some(addr) => (addr.parse().unwrap_or_else(|e| {
            eprintln!("loadgen: bad --addr {addr}: {e}");
            std::process::exit(2);
        }), None),
        None => {
            let handle = serve(ServerConfig {
                workers: connections + 1,
                ..ServerConfig::ephemeral(&data_dir)
            })
            .unwrap_or_else(|e| {
                eprintln!("loadgen: cannot boot server: {e}");
                std::process::exit(1);
            });
            (handle.addr(), Some(handle))
        }
    };
    println!("target: {target} ({connections} connections x {requests} requests)");

    // Seed the session over one connection.
    let extent = BoundingBox::new(Point::new(0.0, 0.0), Point::new(4000.0, 3000.0));
    let mut rng = SplitMix64::seed_from_u64(SEED);
    let map = random_map(&mut rng, regions, extent);
    let mut seed_client = Client::connect(target).expect("connect");
    let resp = seed_client.post("/sessions", "{\"name\":\"bench\"}").expect("create session");
    assert_eq!(resp.status, 200, "create session: {}", resp.body);
    for m in &map {
        let body = format!(
            "{{\"edits\":[{{\"op\":\"insert\",\"color\":\"{}\",\"region\":{}}}]}}",
            m.color,
            region_to_json(&m.region),
        );
        let resp = seed_client.post("/sessions/bench/apply", &body).expect("seed apply");
        assert_eq!(resp.status, 200, "seed apply: {}", resp.body);
    }

    // The measured phase: K reader connections plus one writer
    // connection, all counted, all checked.
    let registry = Arc::new(Registry::new());
    let errors = Arc::new(AtomicU64::new(0));
    let total = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut threads = Vec::new();
    for c in 0..connections {
        let registry = registry.clone();
        let errors = errors.clone();
        let total = total.clone();
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(target).expect("connect");
            let mut rng = SplitMix64::seed_from_u64(SEED ^ (c as u64 + 1) << 8);
            let hist = registry.histogram("latency", &DURATION_BOUNDS_NS);
            for _ in 0..requests {
                let roll = rng.random_range(0..10usize);
                let t0 = Instant::now();
                let resp = if roll < 6 {
                    let p = rng.random_range(0..regions);
                    let mut r = rng.random_range(0..regions - 1);
                    if r >= p {
                        r += 1;
                    }
                    client.get(&format!("/sessions/bench/relation?primary={p}&reference={r}"))
                } else if roll < 8 {
                    client.get("/sessions/bench/relations")
                } else if roll < 9 {
                    client.post("/sessions/bench/query", "{\"query\":\"{(x, y) | x N:NE y}\"}")
                } else {
                    client.get("/sessions/bench")
                };
                hist.record(ns(t0.elapsed()));
                total.fetch_add(1, Ordering::Relaxed);
                match resp {
                    Ok(resp) if resp.status == 200 => {}
                    Ok(resp) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        eprintln!("loadgen: request errored: {} {}", resp.status, resp.body);
                    }
                    Err(e) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        eprintln!("loadgen: request failed: {e}");
                    }
                }
            }
        }));
    }
    // Writer lane: continuous replaces on slot 0 while readers run —
    // every one forces a snapshot swap the readers ride through.
    {
        let registry = registry.clone();
        let errors = errors.clone();
        let total = total.clone();
        let writer_requests = requests / 4;
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(target).expect("connect");
            let mut rng = SplitMix64::seed_from_u64(SEED ^ 0xfeed);
            let hist = registry.histogram("latency", &DURATION_BOUNDS_NS);
            for _ in 0..writer_requests {
                let region = cardir_workloads::random_region(&mut rng, extent).region;
                let body = format!(
                    "{{\"edits\":[{{\"op\":\"replace\",\"slot\":0,\"region\":{}}}]}}",
                    region_to_json(&region),
                );
                let t0 = Instant::now();
                let resp = client.post("/sessions/bench/apply", &body);
                hist.record(ns(t0.elapsed()));
                total.fetch_add(1, Ordering::Relaxed);
                match resp {
                    Ok(resp) if resp.status == 200 => {}
                    Ok(resp) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        eprintln!("loadgen: write errored: {} {}", resp.status, resp.body);
                    }
                    Err(e) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        eprintln!("loadgen: write failed: {e}");
                    }
                }
            }
        }));
    }
    for thread in threads {
        thread.join().expect("load thread");
    }
    let elapsed = start.elapsed();
    let total = total.load(Ordering::Relaxed);
    let errors = errors.load(Ordering::Relaxed);
    let rps = total as f64 / elapsed.as_secs_f64();
    let hist = registry.snapshot();
    let hist = hist.histogram("latency").expect("latency histogram");

    println!(
        "{total} requests in {elapsed:.2?}: {rps:.0} req/s, errors {errors}, \
         latency p50 {:.0}ns p95 {:.0}ns p99 {:.0}ns",
        hist.p50(),
        hist.p95(),
        hist.p99(),
    );

    if let Some(path) = &json_path {
        let file = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(1);
        });
        let mut sink = JsonLines::new(std::io::BufWriter::new(file));
        sink.emit(
            "server",
            Json::obj([
                ("connections", Json::from(connections)),
                ("requests_per_conn", Json::from(requests)),
                ("regions", Json::from(regions)),
                ("requests", Json::from(total)),
                ("errors", Json::from(errors)),
                ("elapsed_ns", Json::from(ns(elapsed))),
                ("requests_per_sec", Json::from(rps)),
                ("latency_mean_ns", Json::from(hist.mean())),
                ("latency_p50_ns", Json::from(hist.p50())),
                ("latency_p95_ns", Json::from(hist.p95())),
                ("latency_p99_ns", Json::from(hist.p99())),
            ]),
        )
        .and_then(|()| sink.flush())
        .unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("json: wrote {path}");
    }

    if let Some(handle) = handle {
        handle.shutdown();
    }
    let _ = std::fs::remove_dir_all(&data_dir);

    if errors > 0 {
        eprintln!("loadgen: {errors} errored request(s)");
        std::process::exit(1);
    }
}
