//! E7 — the full Fig. 11/12 report: every pairwise relation of the
//! Ancient-Greece scenario, the two relations the paper prints, and the
//! Section-4 query.
//!
//! Run with: `cargo run --release -p cardir-bench --bin greece_report`

use cardir_cardirect::{evaluate, parse_query, Configuration};
use cardir_workloads::greece;

fn main() {
    let mut config = Configuration::new("Ancient Greece", "peloponnesian_war.png");
    for r in greece::scenario() {
        config
            .add_region(r.name.to_lowercase(), r.name, r.alliance.color(), r.region)
            .expect("scenario ids are unique");
    }
    config.compute_all_relations();

    println!("E7 — pairwise cardinal direction relations of the Fig. 11 scenario\n");
    let names: Vec<String> = config.regions().iter().map(|r| r.id.clone()).collect();
    println!("{:<14} relations (primary → reference):", "");
    for p in &names {
        for q in &names {
            if p != q {
                let rel = config.relation_between(p, q).expect("known ids");
                // Keep the report readable: only print rows anchored on
                // the paper's two protagonists plus the surround pair.
                let interesting = p == "peloponnesos" || q == "peloponnesos" || q == "aegina";
                if interesting {
                    println!(
                        "  {:<14} {:<24} {}",
                        config.region(p).unwrap().name,
                        rel.to_string(),
                        config.region(q).unwrap().name
                    );
                }
            }
        }
    }

    println!("\nFig. 12 (left):  Peloponnesos {} Attica", config.relation_between("peloponnesos", "attica").unwrap());
    println!("Fig. 12 (right): Attica w.r.t. Peloponnesos, with percentages:");
    println!("{:.1}", config.percentages_between("attica", "peloponnesos").unwrap());

    let q = parse_query("{(a, b) | color(a) = red, color(b) = blue, a S:SW:W:NW:N:NE:E:SE b}")
        .expect("the paper's query");
    println!("\nSection 4 query: {q}");
    for b in evaluate(&q, &config).expect("evaluates") {
        println!(
            "  → {} surrounds {}",
            config.region(&b.values[0]).unwrap().name,
            config.region(&b.values[1]).unwrap().name
        );
    }
}
