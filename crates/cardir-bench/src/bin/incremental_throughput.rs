//! Incremental-engine throughput: what one edit costs when the relation
//! set is maintained as a delta instead of recomputed from scratch.
//!
//! For each N the bench builds the standard jittered-grid star-region
//! map, bootstraps a journaled [`RelationStore`], and applies K random
//! single-region `Replace` edits (seeded translations that keep the
//! region inside the extent). Reported per N:
//!
//! * the invalidation ratio — ordered pairs invalidated per edit over
//!   the N·(N−1) pair space (the `< 5%` claim at N = 10 000),
//! * mean edit latency and edits/sec through the full store (engine
//!   recompute + durable journal append),
//! * the measured speedup of one edit over a fresh full spatial-join
//!   recompute of the same map,
//! * journal traffic (bytes, compactions) and the crash-replay cost:
//!   the store is dropped and reopened, timing the journal replay that
//!   restores the full relation set without recomputing geometry.
//!
//! Usage: `incremental_throughput [N ...] [--edits K] [--json PATH]`.
//! Default sweep: N ∈ {1000, 10000}, K = 50. `--json` writes one
//! JSON-lines record per N with `"type": "incremental"` (the
//! `incremental.*` fields CI gates on via `json_check --require` and
//! `bench_diff`).

use cardir_bench::SEED;
use cardir_cardirect::{RelationStore, StoreOptions};
use cardir_engine::{BatchEngine, Edit, EngineMode, RegionCache, RunPolicy};
use cardir_geometry::{BoundingBox, Point, Region};
use cardir_telemetry::{Json, JsonLines};
use cardir_workloads::{random_map, SplitMix64};
use std::hint::black_box;
use std::time::Instant;

fn ns(d: std::time::Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

fn main() {
    let mut sizes: Vec<usize> = Vec::new();
    let mut edits: usize = 50;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            json_path = Some(args.next().unwrap_or_else(|| {
                eprintln!("--json requires a path");
                std::process::exit(2);
            }));
        } else if arg == "--edits" {
            edits = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("--edits requires a count");
                std::process::exit(2);
            });
        } else if let Ok(v) = arg.parse() {
            sizes.push(v);
        } else {
            eprintln!("usage: incremental_throughput [N ...] [--edits K] [--json PATH]");
            std::process::exit(2);
        }
    }
    if sizes.is_empty() {
        sizes = vec![1_000, 10_000];
    }

    let mut sink = json_path.as_deref().map(|path| {
        let file = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(1);
        });
        JsonLines::new(std::io::BufWriter::new(file))
    });

    let extent = BoundingBox::new(Point::new(0.0, 0.0), Point::new(4000.0, 3000.0));
    let journal_path = std::env::temp_dir().join(format!(
        "cardir-bench-incremental-{}.cdj",
        std::process::id()
    ));

    for &n in &sizes {
        let mut rng = SplitMix64::seed_from_u64(SEED);
        let regions: Vec<Region> =
            random_map(&mut rng, n, extent).into_iter().map(|m| m.region).collect();
        let total = n * (n - 1);
        println!("\n== N = {n} ({total} ordered pairs; {edits} edits) ==");

        // Fresh-journal bootstrap: one full spatial join, then the
        // initial snapshot compaction.
        let _ = std::fs::remove_file(&journal_path);
        let opts = StoreOptions {
            mode: EngineMode::Qualitative,
            threads: 1,
            ..StoreOptions::default()
        };
        let start = Instant::now();
        let mut store = RelationStore::open(&journal_path, &regions, opts);
        let bootstrap = start.elapsed();
        assert!(store.journal_healthy(), "bootstrap journal must land");
        println!(
            "bootstrap: {bootstrap:.2?} ({} exact pairs stored, journal {} bytes)",
            store.engine().exact_count(),
            store.journal_bytes()
        );

        // Full-recompute baseline on the same map: the cost an edit
        // would pay without the incremental layer (prefilter-on join,
        // same mode and threads; warm best-of-2).
        let cache = RegionCache::build(&regions);
        let batch = BatchEngine::new().with_mode(opts.mode).with_threads(opts.threads);
        let full_recompute = (0..2)
            .map(|_| {
                let start = Instant::now();
                black_box(batch.run_join(&cache, &RunPolicy::default()));
                start.elapsed()
            })
            .min()
            .expect("two runs");

        // K seeded single-region edits: translate a random live region
        // by a small seeded offset, clamped into the extent.
        let policy = RunPolicy::default();
        let stats_before = store.engine().stats();
        let start = Instant::now();
        for _ in 0..edits {
            let live: Vec<u32> = store.engine().live_regions().map(|(id, _)| id).collect();
            let victim = live[rng.random_range(0..live.len() as u64) as usize];
            let region = store.engine().region(victim).expect("victim is live");
            let mbb = region.mbb();
            let dx = (rng.next_f64() - 0.5) * 100.0;
            let dy = (rng.next_f64() - 0.5) * 100.0;
            let dx = dx.clamp(extent.min.x - mbb.min.x, extent.max.x - mbb.max.x);
            let dy = dy.clamp(extent.min.y - mbb.min.y, extent.max.y - mbb.max.y);
            let replacement = region.translated(dx, dy);
            store.apply(Edit::Replace(victim, replacement), &policy).expect("edit applies");
        }
        let edit_elapsed = start.elapsed();
        let stats = store.engine().stats();
        let pairs_invalidated = stats.pairs_invalidated - stats_before.pairs_invalidated;
        let pairs_recomputed = stats.pairs_recomputed - stats_before.pairs_recomputed;
        let invalidated_ratio =
            pairs_invalidated as f64 / (edits as f64 * total as f64);
        let avg_edit_ns = ns(edit_elapsed) / edits.max(1) as u64;
        let edits_per_sec = edits as f64 / edit_elapsed.as_secs_f64();
        let speedup_vs_full = ns(full_recompute) as f64 / avg_edit_ns.max(1) as f64;
        println!(
            "edits: {edits} in {edit_elapsed:.2?} ({edits_per_sec:.0} edits/sec, avg {avg_edit_ns} ns)"
        );
        println!(
            "       invalidated {pairs_invalidated} pairs ({:.3}% of the pair space per edit), \
             recomputed {pairs_recomputed}",
            100.0 * invalidated_ratio
        );
        println!(
            "full recompute baseline: {full_recompute:.2?} → one edit is {speedup_vs_full:.0}x faster"
        );

        let journal_bytes = store.journal_bytes();
        let compactions = store.stats().compactions;
        let appends = store.stats().appends;

        // Crash-replay cost: drop the store cold and reopen — the whole
        // relation set must come back from the journal, no geometry
        // recomputed.
        let final_exact = store.engine().exact_count();
        drop(store);
        let start = Instant::now();
        let reopened = RelationStore::open(&journal_path, &regions, opts);
        let replay_elapsed = start.elapsed();
        let replay = reopened.replay_report().source.label().to_string();
        assert_eq!(
            reopened.engine().exact_count(),
            final_exact,
            "replay must restore the full relation set"
        );
        println!(
            "journal: {journal_bytes} bytes, {appends} appends, {compactions} compactions; \
             replay ({replay}) in {replay_elapsed:.2?}"
        );

        if let Some(sink) = &mut sink {
            sink.emit(
                "incremental",
                Json::obj([
                    ("regions", Json::from(n)),
                    ("total_pairs", Json::from(total)),
                    ("edits", Json::from(edits)),
                    ("mode", Json::from("qualitative")),
                    ("threads", Json::from(opts.threads)),
                    ("seed", Json::from(SEED)),
                    ("bootstrap_ns", Json::from(ns(bootstrap))),
                    ("pairs_invalidated", Json::from(pairs_invalidated)),
                    ("invalidated_ratio", Json::from(invalidated_ratio)),
                    ("pairs_recomputed", Json::from(pairs_recomputed)),
                    ("exact_stored", Json::from(final_exact)),
                    ("avg_edit_ns", Json::from(avg_edit_ns)),
                    ("edits_per_sec", Json::from(edits_per_sec)),
                    ("full_recompute_ns", Json::from(ns(full_recompute))),
                    ("speedup_vs_full", Json::from(speedup_vs_full)),
                    ("journal_bytes", Json::from(journal_bytes)),
                    ("journal_appends", Json::from(appends)),
                    ("compactions", Json::from(compactions)),
                    ("replay", Json::from(replay.as_str())),
                    ("replay_ns", Json::from(ns(replay_elapsed))),
                ]),
            )
            .expect("write JSON line");
        }
    }
    let _ = std::fs::remove_file(&journal_path);

    if let Some(sink) = &mut sink {
        sink.flush().expect("flush JSON sink");
        println!("\nwrote {}", json_path.as_deref().unwrap_or_default());
    }
}
