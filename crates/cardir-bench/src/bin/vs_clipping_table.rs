//! E6 — the comparison Section 5 names as the next experimental step:
//! speedup of the paper's algorithms over the clipping baseline, across
//! edge counts and shape families, together with the introduced-edge
//! ratio that drives it.
//!
//! Run with: `cargo run --release -p cardir-bench --bin vs_clipping_table`

use cardir_bench::{calibrate_iters, scaling_pair, time_mean, SEED};
use cardir_core::{clipping_cdr, compute_cdr, compute_cdr_pct, compute_cdr_with_stats};
use cardir_geometry::Region;
use cardir_workloads::comb_polygon;
use std::hint::black_box;
use std::time::Duration;

fn report(label: &str, a: &Region, b: &Region) {
    let target = Duration::from_millis(20);
    let iters = calibrate_iters(target, || {
        black_box(compute_cdr(black_box(a), black_box(b)));
    });
    let t_cdr = time_mean(iters, || {
        black_box(compute_cdr(black_box(a), black_box(b)));
    });
    let iters = calibrate_iters(target, || {
        black_box(compute_cdr_pct(black_box(a), black_box(b)));
    });
    let t_pct = time_mean(iters, || {
        black_box(compute_cdr_pct(black_box(a), black_box(b)));
    });
    let iters = calibrate_iters(target, || {
        black_box(clipping_cdr(black_box(a), black_box(b)));
    });
    let t_clip = time_mean(iters, || {
        black_box(clipping_cdr(black_box(a), black_box(b)));
    });

    let (_, stats) = compute_cdr_with_stats(a, b);
    let clip = clipping_cdr(a, b);
    println!(
        "| {:<14} | {:>7} | {:>12.2?} | {:>12.2?} | {:>12.2?} | {:>9.2}x | {:>9.2}x | {:>5} vs {:<5} |",
        label,
        a.edge_count(),
        t_cdr,
        t_pct,
        t_clip,
        t_clip.as_nanos() as f64 / t_cdr.as_nanos() as f64,
        t_clip.as_nanos() as f64 / t_pct.as_nanos() as f64,
        stats.output_edges,
        clip.stats.output_edges,
    );
}

fn main() {
    println!("E6 — Compute-CDR / Compute-CDR% vs polygon clipping");
    println!("(the paper predicts the division algorithms win: 1 scan vs 9, fewer edges)\n");
    println!(
        "| {:<14} | {:>7} | {:>12} | {:>12} | {:>12} | {:>10} | {:>10} | {:<14} |",
        "shape", "edges", "CDR", "CDR%", "clipping", "clip/CDR", "clip/CDR%", "edges introduced"
    );
    println!(
        "|{}|{}|{}|{}|{}|{}|{}|{}|",
        "-".repeat(16),
        "-".repeat(9),
        "-".repeat(14),
        "-".repeat(14),
        "-".repeat(14),
        "-".repeat(12),
        "-".repeat(12),
        "-".repeat(16)
    );

    for edges in [64usize, 256, 1024, 4096, 16384] {
        let (a, b) = scaling_pair(edges, SEED);
        report("star", &a, &b);
    }
    let b = Region::from_coords([(0.0, 0.0), (400.0, 0.0), (400.0, 3.0), (0.0, 3.0)])
        .expect("static geometry");
    for teeth in [16usize, 128, 1024] {
        let comb = Region::single(comb_polygon(-5.0, 1.0, 6.0, 0.35, teeth));
        report("comb", &comb, &b);
    }
}
