//! E10/DESIGN §9 — empirical completeness of the consistency solver.
//!
//! The solver's refutations are exact, and its "consistent" answers carry
//! machine-verified witnesses; the documented gap is `Unknown` (no
//! witness found under the canonical endpoint schedules). This experiment
//! measures that gap on networks that are satisfiable *by construction*:
//! sample k random regions, compute all pairwise relations with
//! `Compute-CDR` (the sampled scene is a model), and hand the network to
//! the solver.
//!
//! Run with: `cargo run --release -p cardir-bench --bin solver_completeness`

use cardir_core::compute_cdr;
use cardir_geometry::{Point, Region};
use cardir_reasoning::{Network, Outcome};
use cardir_workloads::{star_polygon, SplitMix64};

fn random_scene(rng: &mut SplitMix64, k: usize) -> Vec<Region> {
    (0..k)
        .map(|_| {
            let c = Point::new(rng.random_range(-12.0..12.0), rng.random_range(-12.0..12.0));
            let r = rng.random_range(1.0..6.0);
            let n = rng.random_range(4..16usize);
            Region::single(star_polygon(rng, c, 0.4 * r, r, n))
        })
        .collect()
}

fn main() {
    let mut rng = SplitMix64::seed_from_u64(cardir_bench::SEED);
    println!("E10 — solver completeness on satisfiable-by-construction networks\n");
    println!(
        "| {:>5} | {:>7} | {:>10} | {:>8} | {:>13} |",
        "vars", "trials", "consistent", "unknown", "inconsistent"
    );
    println!("|{}|{}|{}|{}|{}|", "-".repeat(7), "-".repeat(9), "-".repeat(12), "-".repeat(10), "-".repeat(15));
    for k in [2usize, 3, 4, 5, 6] {
        let trials = 200;
        let mut consistent = 0;
        let mut unknown = 0;
        let mut inconsistent = 0;
        for _ in 0..trials {
            let scene = random_scene(&mut rng, k);
            let mut net = Network::new();
            for i in 0..k {
                net.add_variable(&format!("v{i}")).expect("fresh names");
            }
            for i in 0..k {
                for j in 0..k {
                    if i != j {
                        let rel = compute_cdr(&scene[i], &scene[j]);
                        net.add_constraint(&format!("v{i}"), rel, &format!("v{j}"))
                            .expect("declared");
                    }
                }
            }
            match net.solve() {
                Outcome::Consistent(_) => consistent += 1,
                Outcome::Unknown => unknown += 1,
                Outcome::Inconsistent => inconsistent += 1,
            }
        }
        println!(
            "| {:>5} | {:>7} | {:>10} | {:>8} | {:>13} |",
            k, trials, consistent, unknown, inconsistent
        );
        assert_eq!(
            inconsistent, 0,
            "soundness violation: a satisfiable network was refuted"
        );
    }
    println!("\n`inconsistent` must be 0 (these networks have models by construction);");
    println!("`unknown` is the measured completeness gap of the canonical-schedule heuristic.");
}
