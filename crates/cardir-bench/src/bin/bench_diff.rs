//! Compares two BENCH-format JSON-lines files with per-series regression
//! thresholds, for CI gating against the committed baselines.
//!
//! Usage:
//!   `bench_diff BASELINE NEW [--threshold X] [--metric TYPE.FIELD[:lower]]...
//!                            [--filter FIELD=VALUE]... [--key TYPE=F1,F2]...`
//!
//! Records are joined across the two files on per-type key fields
//! (defaults: `engine_cell` by `mode`+`threads`, `join` by `regions`).
//! The default tracked metric is `engine_cell.pairs_per_sec`
//! (higher-is-better); `--metric` replaces the default and may repeat.
//! Append `:lower` for metrics where smaller is better (`elapsed_ns`).
//! A baseline series missing from NEW fails — a vanished series is a
//! regression, not a skip. `--filter threads=1` restricts the gate to
//! matching baseline records (useful when the baseline machine had more
//! cores than CI). Exits 0 when every compared series stays within the
//! threshold, 1 otherwise.

use cardir_bench::diff::{run_diff, DiffConfig, MetricSpec};

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut cfg = DiffConfig::default();
    let mut metrics: Vec<MetricSpec> = Vec::new();
    let usage = "usage: bench_diff BASELINE NEW [--threshold X] [--metric TYPE.FIELD[:lower]]... [--filter FIELD=VALUE]... [--key TYPE=F1,F2]...";
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("bench_diff: {flag} requires a value\n{usage}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--threshold" => {
                let raw = value_of("--threshold");
                cfg.threshold = raw.parse().unwrap_or_else(|_| {
                    eprintln!("bench_diff: --threshold expects a number, got {raw:?}");
                    std::process::exit(2);
                });
            }
            "--metric" => {
                let spec = value_of("--metric");
                metrics.push(MetricSpec::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("bench_diff: {e}");
                    std::process::exit(2);
                }));
            }
            "--filter" => {
                let spec = value_of("--filter");
                match spec.split_once('=') {
                    Some((f, v)) if !f.is_empty() => {
                        cfg.filters.push((f.to_string(), v.to_string()));
                    }
                    _ => {
                        eprintln!("bench_diff: --filter expects FIELD=VALUE, got {spec:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--key" => {
                let spec = value_of("--key");
                match spec.split_once('=') {
                    Some((ty, fields)) if !ty.is_empty() && !fields.is_empty() => {
                        let fields: Vec<String> =
                            fields.split(',').map(str::to_string).collect();
                        // Later --key flags override the defaults.
                        cfg.keys.retain(|(t, _)| t != ty);
                        cfg.keys.push((ty.to_string(), fields));
                    }
                    _ => {
                        eprintln!("bench_diff: --key expects TYPE=F1,F2, got {spec:?}");
                        std::process::exit(2);
                    }
                }
            }
            _ if !arg.starts_with("--") && paths.len() < 2 => paths.push(arg),
            _ => {
                eprintln!("{usage}");
                std::process::exit(2);
            }
        }
    }
    if paths.len() != 2 {
        eprintln!("{usage}");
        std::process::exit(2);
    }
    if !metrics.is_empty() {
        cfg.metrics = metrics;
    }
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_diff: cannot read {path}: {e}");
            std::process::exit(1);
        })
    };
    let baseline = read(&paths[0]);
    let new = read(&paths[1]);
    let report = run_diff(&baseline, &new, &cfg).unwrap_or_else(|e| {
        eprintln!("bench_diff: {e}");
        std::process::exit(1);
    });
    print!("{}", report.render());
    if !report.passed() {
        std::process::exit(1);
    }
}
