//! Validates a telemetry JSON-lines file: every line must parse with the
//! workspace's own hand-rolled parser, be an object, and carry a string
//! `type` field; the file must contain at least one record. Used by the
//! CI telemetry smoke so bench emission stays machine-readable without
//! any external tooling.
//!
//! Usage: `json_check PATH` — exits 0 and prints a record tally on
//! success, exits 1 with a diagnostic on the first malformed line.

use cardir_telemetry::{parse_json, Json};

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: json_check PATH");
        std::process::exit(2);
    });
    let content = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("json_check: cannot read {path}: {e}");
        std::process::exit(1);
    });

    let mut records = 0usize;
    for (lineno, line) in content.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = parse_json(line).unwrap_or_else(|e| {
            eprintln!("json_check: {path}:{}: {e}", lineno + 1);
            std::process::exit(1);
        });
        if !matches!(value, Json::Obj(_)) {
            eprintln!("json_check: {path}:{}: record is not an object", lineno + 1);
            std::process::exit(1);
        }
        if value.get("type").and_then(Json::as_str).is_none() {
            eprintln!("json_check: {path}:{}: record has no string \"type\" field", lineno + 1);
            std::process::exit(1);
        }
        records += 1;
    }
    if records == 0 {
        eprintln!("json_check: {path}: no records");
        std::process::exit(1);
    }
    println!("{path}: {records} well-formed records");
}
