//! Validates a telemetry JSON-lines file: every line must parse with the
//! workspace's own hand-rolled parser, be an object, and carry a string
//! `type` field; the file must contain at least one record. Used by the
//! CI telemetry smoke so bench emission stays machine-readable without
//! any external tooling.
//!
//! Usage: `json_check PATH [--require TYPE.FIELD]...` — exits 0 and
//! prints a record tally on success, exits 1 with a diagnostic on the
//! first malformed line. Each `--require TYPE.FIELD` additionally
//! demands at least one record of the given `type` carrying the given
//! field (e.g. `--require geometry.exact_fallback` pins the robust
//! predicate counters into the bench emission contract).

use cardir_telemetry::{parse_json, Json};

fn main() {
    let mut path: Option<String> = None;
    let mut requires: Vec<(String, String)> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--require" {
            let spec = args.next().unwrap_or_default();
            match spec.split_once('.') {
                Some((ty, field)) if !ty.is_empty() && !field.is_empty() => {
                    requires.push((ty.to_string(), field.to_string()));
                }
                _ => {
                    eprintln!("json_check: --require expects TYPE.FIELD, got {spec:?}");
                    std::process::exit(2);
                }
            }
        } else if path.is_none() {
            path = Some(arg);
        } else {
            eprintln!("usage: json_check PATH [--require TYPE.FIELD]...");
            std::process::exit(2);
        }
    }
    let path = path.unwrap_or_else(|| {
        eprintln!("usage: json_check PATH [--require TYPE.FIELD]...");
        std::process::exit(2);
    });
    let content = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("json_check: cannot read {path}: {e}");
        std::process::exit(1);
    });

    let mut records = 0usize;
    let mut satisfied = vec![false; requires.len()];
    for (lineno, line) in content.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = parse_json(line).unwrap_or_else(|e| {
            eprintln!("json_check: {path}:{}: {e}", lineno + 1);
            std::process::exit(1);
        });
        if !matches!(value, Json::Obj(_)) {
            eprintln!("json_check: {path}:{}: record is not an object", lineno + 1);
            std::process::exit(1);
        }
        let Some(ty) = value.get("type").and_then(Json::as_str) else {
            eprintln!("json_check: {path}:{}: record has no string \"type\" field", lineno + 1);
            std::process::exit(1);
        };
        for (i, (req_ty, req_field)) in requires.iter().enumerate() {
            if ty == req_ty && value.get(req_field).is_some() {
                satisfied[i] = true;
            }
        }
        records += 1;
    }
    if records == 0 {
        eprintln!("json_check: {path}: no records");
        std::process::exit(1);
    }
    let mut missing = false;
    for ((ty, field), ok) in requires.iter().zip(&satisfied) {
        if !ok {
            eprintln!("json_check: {path}: no \"{ty}\" record carries field \"{field}\"");
            missing = true;
        }
    }
    if missing {
        std::process::exit(1);
    }
    println!("{path}: {records} well-formed records");
}
