//! Extensions from the paper's future-work list.
//!
//! Section 5: "A second interesting topic is the possibility of combining
//! topological \[2\] and distance relations \[3\]" with the cardinal
//! direction machinery. This crate implements both companions over the
//! same `REG*` regions:
//!
//! * [`topology`] — Egenhofer-style topological relations
//!   (`Disjoint`, `Meets`, `Overlaps`, `Equals`, `Inside`, `Contains`)
//!   computed from edge-crossing analysis and representative interior
//!   points — no clipping, in the spirit of the paper's algorithms;
//! * [`distance`] — Frank-style qualitative distance relations
//!   (`Equal`, `Close`, `Medium`, `Far`) derived from the exact minimum
//!   Euclidean separation of two regions under a configurable scheme;
//! * [`combined`] — the joint descriptor the future work asks for: one
//!   call yielding direction + topology + distance for a region pair.

pub mod combined;
pub mod distance;
pub mod topology;

pub use combined::{describe, SpatialDescription};
pub use distance::{min_distance, DistanceRelation, DistanceScheme};
pub use topology::{topological_relation, TopologicalRelation};
