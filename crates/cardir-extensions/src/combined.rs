//! The combined spatial descriptor the paper's future work asks for:
//! cardinal direction + topology + qualitative distance in one call.

use crate::distance::{distance_relation, min_distance, DistanceRelation, DistanceScheme};
use crate::topology::{topological_relation, TopologicalRelation};
use cardir_core::{compute_cdr, CardinalRelation};
use cardir_geometry::Region;
use std::fmt;

/// A full qualitative description of `a` relative to `b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpatialDescription {
    /// The cardinal direction relation (`a R b`).
    pub direction: CardinalRelation,
    /// The topological relation.
    pub topology: TopologicalRelation,
    /// The qualitative distance class.
    pub distance: DistanceRelation,
    /// The exact separation behind the distance class.
    pub separation: f64,
}

impl fmt::Display for SpatialDescription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / {} / {} ({:.3})",
            self.direction, self.topology, self.distance, self.separation
        )
    }
}

/// Describes `a` relative to `b` under `scheme`.
///
/// ```
/// use cardir_extensions::{describe, DistanceScheme};
/// use cardir_geometry::Region;
///
/// let b = Region::from_coords([(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]).unwrap();
/// let a = Region::from_coords([(6.0, 1.0), (7.0, 1.0), (7.0, 3.0), (6.0, 3.0)]).unwrap();
/// let d = describe(&a, &b, &DistanceScheme::scaled_to(4.0));
/// assert_eq!(d.direction.to_string(), "E");
/// assert_eq!(d.topology.to_string(), "disjoint");
/// assert_eq!(d.distance.to_string(), "close");
/// ```
pub fn describe(a: &Region, b: &Region, scheme: &DistanceScheme) -> SpatialDescription {
    SpatialDescription {
        direction: compute_cdr(a, b),
        topology: topological_relation(a, b),
        distance: distance_relation(a, b, scheme),
        separation: min_distance(a, b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Region {
        Region::from_coords([(x0, y0), (x1, y0), (x1, y1), (x0, y1)]).unwrap()
    }

    #[test]
    fn consistent_cross_signals() {
        let b = rect(0.0, 0.0, 4.0, 4.0);
        // Overlapping across the east wall: direction B:E, topology
        // overlaps, distance equal.
        let a = rect(3.0, 1.0, 6.0, 3.0);
        let d = describe(&a, &b, &DistanceScheme::scaled_to(4.0));
        assert_eq!(d.direction.to_string(), "B:E");
        assert_eq!(d.topology, TopologicalRelation::Overlaps);
        assert_eq!(d.distance, DistanceRelation::Equal);
        assert_eq!(d.separation, 0.0);
    }

    #[test]
    fn topology_and_distance_are_coupled() {
        let b = rect(0.0, 0.0, 4.0, 4.0);
        let scheme = DistanceScheme::scaled_to(4.0);
        for a in [
            rect(1.0, 1.0, 3.0, 3.0),
            rect(4.0, 0.0, 6.0, 4.0),
            rect(9.0, 0.0, 10.0, 4.0),
            rect(30.0, 0.0, 31.0, 4.0),
        ] {
            let d = describe(&a, &b, &scheme);
            // Non-disjoint topology forces distance Equal, and vice versa.
            let touching = d.topology != TopologicalRelation::Disjoint;
            assert_eq!(touching, d.distance == DistanceRelation::Equal, "{d}");
            assert_eq!(d.separation == 0.0, touching, "{d}");
        }
    }

    #[test]
    fn display_format() {
        let b = rect(0.0, 0.0, 4.0, 4.0);
        let a = rect(6.0, 1.0, 7.0, 3.0);
        let d = describe(&a, &b, &DistanceScheme::scaled_to(4.0));
        assert_eq!(d.to_string(), "E / disjoint / close (2.000)");
    }
}
