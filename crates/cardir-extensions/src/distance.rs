//! Qualitative distance relations (Frank, cited as \[3\] by the paper).
//!
//! The underlying quantity is the exact minimum Euclidean separation
//! between the two closed regions (zero when they intersect); a
//! [`DistanceScheme`] buckets it into the qualitative classes
//! `Equal` (contact), `Close`, `Medium`, `Far`.

use cardir_geometry::{segments_intersect, Point, Region, Segment};
use std::fmt;

/// Qualitative distance between two regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DistanceRelation {
    /// The closed regions share at least one point.
    Equal,
    /// Separation in `(0, scheme.close]`.
    Close,
    /// Separation in `(scheme.close, scheme.medium]`.
    Medium,
    /// Separation beyond `scheme.medium`.
    Far,
}

impl fmt::Display for DistanceRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DistanceRelation::Equal => "equal",
            DistanceRelation::Close => "close",
            DistanceRelation::Medium => "medium",
            DistanceRelation::Far => "far",
        };
        f.write_str(s)
    }
}

/// Thresholds bucketing a separation into qualitative classes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceScheme {
    /// Upper bound of the `Close` class.
    pub close: f64,
    /// Upper bound of the `Medium` class.
    pub medium: f64,
}

impl DistanceScheme {
    /// A scheme scaled to a reference length (e.g. the reference region's
    /// diameter): `Close` within 0.5×, `Medium` within 2×.
    pub fn scaled_to(reference_length: f64) -> Self {
        DistanceScheme { close: 0.5 * reference_length, medium: 2.0 * reference_length }
    }

    /// Classifies a separation.
    pub fn classify(&self, separation: f64) -> DistanceRelation {
        debug_assert!(self.close <= self.medium, "scheme thresholds must be ordered");
        if separation <= 0.0 {
            DistanceRelation::Equal
        } else if separation <= self.close {
            DistanceRelation::Close
        } else if separation <= self.medium {
            DistanceRelation::Medium
        } else {
            DistanceRelation::Far
        }
    }
}

/// The qualitative distance relation between `a` and `b` under `scheme`.
pub fn distance_relation(a: &Region, b: &Region, scheme: &DistanceScheme) -> DistanceRelation {
    scheme.classify(min_distance(a, b))
}

/// Exact minimum Euclidean distance between the closed regions (0 when
/// they intersect or touch).
///
/// For disjoint regions the minimum is attained between boundaries, so
/// the pairwise minimum over edge pairs suffices; containment (boundary
/// distance positive but distance actually 0) is detected by point
/// membership first. `O(k_a · k_b)` edge pairs with an mbb-distance
/// early-out.
pub fn min_distance(a: &Region, b: &Region) -> f64 {
    // Containment / overlap: any representative of one inside the other.
    if a.polygons().iter().any(|p| b.contains(p.vertices()[0]))
        || b.polygons().iter().any(|p| a.contains(p.vertices()[0]))
    {
        return 0.0;
    }
    let mut best = f64::INFINITY;
    for ea in a.edges() {
        for eb in b.edges() {
            let d = segment_distance(ea, eb);
            if d < best {
                best = d;
                if best == 0.0 {
                    return 0.0;
                }
            }
        }
    }
    // A vertex of one region could also be interior to the other without
    // the vertex test above firing (e.g. interleaved multi-polygon
    // shapes); the edge-distance result is still an upper bound and
    // correct for valid disjoint inputs.
    best
}

/// Minimum distance between two closed segments.
fn segment_distance(s: Segment, t: Segment) -> f64 {
    if segments_intersect(s, t) {
        return 0.0;
    }
    point_segment_distance(s.a, t)
        .min(point_segment_distance(s.b, t))
        .min(point_segment_distance(t.a, s))
        .min(point_segment_distance(t.b, s))
}

fn point_segment_distance(p: Point, s: Segment) -> f64 {
    let d = s.direction();
    let len_sq = d.norm_sq();
    if len_sq == 0.0 {
        return p.distance(s.a);
    }
    let t = ((p - s.a).dot(d) / len_sq).clamp(0.0, 1.0);
    p.distance(s.a.lerp(s.b, t))
}


#[cfg(test)]
mod tests {
    use super::*;

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Region {
        Region::from_coords([(x0, y0), (x1, y0), (x1, y1), (x0, y1)]).unwrap()
    }

    #[test]
    fn min_distance_cases() {
        let a = rect(0.0, 0.0, 1.0, 1.0);
        assert_eq!(min_distance(&a, &rect(3.0, 0.0, 4.0, 1.0)), 2.0); // side gap
        assert_eq!(min_distance(&a, &rect(1.0, 1.0, 2.0, 2.0)), 0.0); // corner touch
        assert_eq!(min_distance(&a, &rect(0.5, 0.5, 2.0, 2.0)), 0.0); // overlap
        assert_eq!(min_distance(&a, &rect(-1.0, -1.0, 2.0, 2.0)), 0.0); // contained
        // Diagonal gap: distance between corners (1,1) and (2,2).
        let d = min_distance(&a, &rect(2.0, 2.0, 3.0, 3.0));
        assert!((d - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn min_distance_is_symmetric() {
        let a = rect(0.0, 0.0, 1.0, 1.0);
        let b = rect(4.0, -2.0, 6.0, -1.0);
        assert_eq!(min_distance(&a, &b), min_distance(&b, &a));
    }

    #[test]
    fn scheme_classification() {
        let scheme = DistanceScheme { close: 1.0, medium: 5.0 };
        assert_eq!(scheme.classify(0.0), DistanceRelation::Equal);
        assert_eq!(scheme.classify(0.5), DistanceRelation::Close);
        assert_eq!(scheme.classify(1.0), DistanceRelation::Close);
        assert_eq!(scheme.classify(3.0), DistanceRelation::Medium);
        assert_eq!(scheme.classify(9.0), DistanceRelation::Far);
    }

    #[test]
    fn scaled_scheme() {
        let scheme = DistanceScheme::scaled_to(10.0);
        let a = rect(0.0, 0.0, 1.0, 1.0);
        assert_eq!(distance_relation(&a, &rect(2.0, 0.0, 3.0, 1.0), &scheme), DistanceRelation::Close);
        assert_eq!(distance_relation(&a, &rect(11.0, 0.0, 12.0, 1.0), &scheme), DistanceRelation::Medium);
        assert_eq!(distance_relation(&a, &rect(50.0, 0.0, 51.0, 1.0), &scheme), DistanceRelation::Far);
        assert_eq!(distance_relation(&a, &a, &scheme), DistanceRelation::Equal);
    }

    #[test]
    fn ordering_matches_severity() {
        assert!(DistanceRelation::Equal < DistanceRelation::Close);
        assert!(DistanceRelation::Close < DistanceRelation::Medium);
        assert!(DistanceRelation::Medium < DistanceRelation::Far);
    }
}
