//! Topological relations between composite regions.
//!
//! The relation set is the RCC-5 lattice plus the boundary-contact
//! distinction (Egenhofer's 4-intersection restricted to region pairs
//! whose members are valid `REG*` representations):
//!
//! | relation | meaning |
//! |----------|---------|
//! | `Disjoint`  | closures share no point |
//! | `Meets`     | boundaries touch, interiors disjoint |
//! | `Overlaps`  | interiors intersect, neither contains the other |
//! | `Equals`    | same point set |
//! | `Inside`    | `a`'s interior inside `b` (proper part) |
//! | `Contains`  | converse of `Inside` |
//!
//! The computation stays in the paper's spirit — no polygon clipping:
//! proper edge crossings decide `Overlaps`; in their absence each member
//! polygon lies entirely inside or outside the other region, so
//! representative interior points decide containment, and residual
//! boundary contact decides `Meets` vs `Disjoint`.
//!
//! Precision: every sign decision goes through the exact predicates in
//! `cardir_geometry::robust` (adaptive-precision `orient2d`), so the
//! lattice classification cannot flip on near-degenerate contact. A
//! vertex lying *exactly* on the other region's boundary with its
//! neighbours on strictly opposite sides is handled as a proper crossing
//! (transversal vertex contact); contacts of measure zero otherwise
//! count as touching.

use cardir_geometry::point::orient;
use cardir_geometry::robust::{orient2d_sign, Sign};
use cardir_geometry::{segments_cross_properly, segments_intersect, Point, Polygon, Region, Segment};
use std::fmt;

/// The topological relation between two regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologicalRelation {
    /// Closures share no point.
    Disjoint,
    /// Boundaries touch; interiors are disjoint.
    Meets,
    /// Interiors intersect and neither region contains the other.
    Overlaps,
    /// The regions are the same point set.
    Equals,
    /// `a` is a proper part of `b`.
    Inside,
    /// `b` is a proper part of `a`.
    Contains,
}

impl TopologicalRelation {
    /// The converse relation (swap of the arguments).
    pub fn converse(self) -> TopologicalRelation {
        match self {
            TopologicalRelation::Inside => TopologicalRelation::Contains,
            TopologicalRelation::Contains => TopologicalRelation::Inside,
            other => other,
        }
    }
}

impl fmt::Display for TopologicalRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TopologicalRelation::Disjoint => "disjoint",
            TopologicalRelation::Meets => "meets",
            TopologicalRelation::Overlaps => "overlaps",
            TopologicalRelation::Equals => "equals",
            TopologicalRelation::Inside => "inside",
            TopologicalRelation::Contains => "contains",
        };
        f.write_str(s)
    }
}

/// Computes the topological relation between `a` and `b`.
pub fn topological_relation(a: &Region, b: &Region) -> TopologicalRelation {
    // Cheap reject: separated bounding boxes.
    if !a.mbb().intersects(b.mbb()) {
        return TopologicalRelation::Disjoint;
    }

    // 1. Any transversal boundary crossing ⇒ both regions have interior
    //    on both sides of the other ⇒ Overlaps.
    if boundaries_cross(a, b) {
        return TopologicalRelation::Overlaps;
    }

    // 2. No crossings: every pair of member polygons is either
    //    interior-disjoint or nested, so the pairwise overlap area is 0
    //    or the smaller polygon's area — summing gives the exact
    //    intersection area of the two regions, which decides the lattice.
    let area_a = a.area();
    let area_b = b.area();
    let mut intersection = 0.0;
    for p in a.polygons() {
        for q in b.polygons() {
            intersection += pair_overlap(p, q);
        }
    }
    let eps = 1e-9 * area_a.max(area_b);
    let a_in_b = (intersection - area_a).abs() <= eps;
    let b_in_a = (intersection - area_b).abs() <= eps;
    if intersection <= eps {
        if boundaries_touch(a, b) {
            TopologicalRelation::Meets
        } else {
            TopologicalRelation::Disjoint
        }
    } else if a_in_b && b_in_a {
        TopologicalRelation::Equals
    } else if a_in_b {
        TopologicalRelation::Inside
    } else if b_in_a {
        TopologicalRelation::Contains
    } else {
        TopologicalRelation::Overlaps
    }
}

/// Intersection area of two member polygons known not to cross: zero
/// when interior-disjoint, the smaller area when nested. Nesting is
/// detected by interior points — if `q ⊆ p` then `q`'s interior point is
/// in `p`, and symmetrically.
fn pair_overlap(p: &Polygon, q: &Polygon) -> f64 {
    if !p.bounding_box().intersects(q.bounding_box()) {
        return 0.0;
    }
    if q.contains(interior_point(p)) || p.contains(interior_point(q)) {
        p.area().min(q.area())
    } else {
        0.0
    }
}

/// A point strictly interior to a simple polygon.
///
/// Classic construction: take the vertex `v` extremal in `(x, y)` order
/// (a convex vertex); among the other vertices inside triangle
/// `(prev, v, next)` pick the one farthest from line `prev–next` and
/// return the midpoint of `v` and it; if none, the triangle centroid is
/// interior.
pub fn interior_point(p: &Polygon) -> Point {
    let vs = p.vertices();
    let n = vs.len();
    // Extremal (lowest x, then lowest y) vertex is convex.
    let (vi, _) = vs
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| (a.x, a.y).partial_cmp(&(b.x, b.y)).expect("finite coords"))
        .expect("polygons are non-empty");
    let prev = vs[(vi + n - 1) % n];
    let v = vs[vi];
    let next = vs[(vi + 1) % n];
    // Farthest other vertex strictly inside the triangle (prev, v, next).
    let mut best: Option<(f64, Point)> = None;
    for (i, &q) in vs.iter().enumerate() {
        if i == vi || i == (vi + n - 1) % n || i == (vi + 1) % n {
            continue;
        }
        if point_strictly_in_triangle(q, prev, v, next) {
            let d = orient(prev, next, q).abs();
            if best.as_ref().is_none_or(|(bd, _)| d > *bd) {
                best = Some((d, q));
            }
        }
    }
    match best {
        Some((_, q)) => v.midpoint(q),
        None => Point::new((prev.x + v.x + next.x) / 3.0, (prev.y + v.y + next.y) / 3.0),
    }
}

fn point_strictly_in_triangle(q: Point, a: Point, b: Point, c: Point) -> bool {
    let d1 = orient2d_sign(a, b, q);
    let d2 = orient2d_sign(b, c, q);
    let d3 = orient2d_sign(c, a, q);
    (d1 == Sign::Positive && d2 == Sign::Positive && d3 == Sign::Positive)
        || (d1 == Sign::Negative && d2 == Sign::Negative && d3 == Sign::Negative)
}

/// Detects a transversal crossing between the boundaries: a proper
/// edge-interior crossing, or a vertex of one boundary lying on the
/// other with its neighbours on strictly opposite sides.
fn boundaries_cross(a: &Region, b: &Region) -> bool {
    let a_edges: Vec<Segment> = a.edges().collect();
    let b_edges: Vec<Segment> = b.edges().collect();
    for ea in &a_edges {
        for eb in &b_edges {
            if segments_cross_properly(*ea, *eb) {
                return true;
            }
        }
    }
    transversal_vertex(a, b) || transversal_vertex(b, a)
}

/// A vertex of `a` lying exactly on an edge of `b`, with its two
/// neighbour vertices strictly on opposite sides of that edge's line —
/// the boundary of `a` passes through `b`'s boundary at the vertex.
fn transversal_vertex(a: &Region, b: &Region) -> bool {
    for poly in a.polygons() {
        let vs = poly.vertices();
        let n = vs.len();
        for i in 0..n {
            let prev = vs[(i + n - 1) % n];
            let v = vs[i];
            let next = vs[(i + 1) % n];
            for eb in b.edges() {
                if !eb.contains_point(v) {
                    continue;
                }
                let d_prev = orient2d_sign(eb.a, eb.b, prev);
                let d_next = orient2d_sign(eb.a, eb.b, next);
                if !d_prev.is_zero() && d_next == d_prev.flipped() {
                    return true;
                }
            }
        }
    }
    false
}

/// Boundaries share at least one point (any segment-pair contact,
/// including endpoint touches and collinear overlap).
fn boundaries_touch(a: &Region, b: &Region) -> bool {
    for ea in a.edges() {
        for eb in b.edges() {
            if segments_intersect(ea, eb) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Region {
        Region::from_coords([(x0, y0), (x1, y0), (x1, y1), (x0, y1)]).unwrap()
    }

    use TopologicalRelation::*;

    #[test]
    fn basic_relations() {
        let a = rect(0.0, 0.0, 2.0, 2.0);
        assert_eq!(topological_relation(&a, &rect(5.0, 5.0, 6.0, 6.0)), Disjoint);
        assert_eq!(topological_relation(&a, &rect(2.0, 0.0, 4.0, 2.0)), Meets); // edge share
        assert_eq!(topological_relation(&a, &rect(2.0, 2.0, 4.0, 4.0)), Meets); // corner touch
        assert_eq!(topological_relation(&a, &rect(1.0, 1.0, 3.0, 3.0)), Overlaps);
        assert_eq!(topological_relation(&a, &rect(0.0, 0.0, 2.0, 2.0)), Equals);
        assert_eq!(topological_relation(&a, &rect(-1.0, -1.0, 3.0, 3.0)), Inside);
        assert_eq!(topological_relation(&a, &rect(0.5, 0.5, 1.5, 1.5)), Contains);
    }

    #[test]
    fn converse_consistency() {
        let shapes = [
            rect(0.0, 0.0, 2.0, 2.0),
            rect(1.0, 1.0, 3.0, 3.0),
            rect(0.5, 0.5, 1.5, 1.5),
            rect(2.0, 0.0, 4.0, 2.0),
            rect(9.0, 9.0, 10.0, 10.0),
        ];
        for a in &shapes {
            for b in &shapes {
                assert_eq!(
                    topological_relation(a, b).converse(),
                    topological_relation(b, a),
                    "a={a} b={b}"
                );
            }
        }
    }

    #[test]
    fn inside_with_shared_boundary_is_inside() {
        // a occupies the west half of b (shares three walls): a proper
        // part with boundary contact — Egenhofer's "covered by", folded
        // into Inside in this 6-relation set.
        let a = rect(0.0, 0.0, 1.0, 2.0);
        let b = rect(0.0, 0.0, 2.0, 2.0);
        assert_eq!(topological_relation(&a, &b), Inside);
    }

    #[test]
    fn region_with_hole_vs_island() {
        // A frame with a hole and an island inside the hole: disjoint,
        // even though the island is inside the frame's bounding box.
        let frame = Region::new(
            [
                Polygon::from_coords([(0.0, 0.0), (4.0, 0.0), (4.0, 1.0), (0.0, 1.0)]).unwrap(),
                Polygon::from_coords([(0.0, 3.0), (4.0, 3.0), (4.0, 4.0), (0.0, 4.0)]).unwrap(),
                Polygon::from_coords([(0.0, 1.0), (1.0, 1.0), (1.0, 3.0), (0.0, 3.0)]).unwrap(),
                Polygon::from_coords([(3.0, 1.0), (4.0, 1.0), (4.0, 3.0), (3.0, 3.0)]).unwrap(),
            ]
            .to_vec(),
        )
        .unwrap();
        let island = rect(1.5, 1.5, 2.5, 2.5);
        assert_eq!(topological_relation(&island, &frame), Disjoint);
        // Touching the hole wall: meets.
        let touching = rect(1.0, 1.5, 2.5, 2.5);
        assert_eq!(topological_relation(&touching, &frame), Meets);
        // Spanning the hole wall: overlaps.
        let spanning = rect(0.5, 1.5, 2.5, 2.5);
        assert_eq!(topological_relation(&spanning, &frame), Overlaps);
    }

    #[test]
    fn disconnected_partial_nesting_is_overlap() {
        // One island of a inside b, one outside: interiors intersect,
        // no containment.
        let a = Region::new(vec![
            Polygon::from_coords([(1.0, 1.0), (2.0, 1.0), (2.0, 2.0), (1.0, 2.0)]).unwrap(),
            Polygon::from_coords([(10.0, 1.0), (11.0, 1.0), (11.0, 2.0), (10.0, 2.0)]).unwrap(),
        ])
        .unwrap();
        let b = rect(0.0, 0.0, 3.0, 3.0);
        assert_eq!(topological_relation(&a, &b), Overlaps);
    }

    #[test]
    fn transversal_vertex_contact_is_overlap() {
        // A diamond whose west vertex lies exactly on b's east wall and
        // pokes through: proper crossing through a vertex.
        let b = rect(0.0, 0.0, 2.0, 2.0);
        let diamond = Region::from_coords([(1.0, 1.0), (3.0, 0.0), (5.0, 1.0), (3.0, 2.0)]).unwrap();
        // The diamond's west vertex (1,1) is inside b; its edges cross
        // b's east wall transversally anyway — still Overlaps.
        assert_eq!(topological_relation(&diamond, &b), Overlaps);
        // Pure vertex-on-edge with both neighbours outside: only a touch.
        let kite = Region::from_coords([(2.0, 1.0), (4.0, 0.0), (6.0, 1.0), (4.0, 2.0)]).unwrap();
        assert_eq!(topological_relation(&kite, &b), Meets);
    }

    #[test]
    fn interior_points_are_interior() {
        let shapes = [
            Polygon::from_coords([(0.0, 0.0), (4.0, 0.0), (0.0, 3.0)]).unwrap(),
            // Concave U.
            Polygon::from_coords([
                (0.0, 0.0),
                (3.0, 0.0),
                (3.0, 3.0),
                (2.0, 3.0),
                (2.0, 1.0),
                (1.0, 1.0),
                (1.0, 3.0),
                (0.0, 3.0),
            ])
            .unwrap(),
            Polygon::from_coords([(0.0, 0.0), (10.0, 0.1), (10.0, 0.2), (0.0, 0.15)]).unwrap(),
        ];
        for p in &shapes {
            let ip = interior_point(p);
            assert!(p.contains(ip), "{p}");
            assert!(!p.on_boundary(ip), "{p}: {ip} on boundary");
        }
    }
}
