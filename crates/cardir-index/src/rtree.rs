//! Guttman R-tree with quadratic splits.

use cardir_geometry::BoundingBox;

/// Maximum entries per node before a split.
const MAX_ENTRIES: usize = 8;
/// Minimum entries per node after a split (`≤ MAX_ENTRIES / 2`).
const MIN_ENTRIES: usize = 3;

/// A dynamic R-tree mapping bounding boxes to payloads of type `T`.
///
/// Insertion follows Guttman's original algorithm: descend into the child
/// needing the least area enlargement, split overflowing nodes with the
/// quadratic seed/distribute heuristic, and grow the tree at the root.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    root: Node<T>,
    len: usize,
}

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf(Vec<(BoundingBox, T)>),
    Internal(Vec<(BoundingBox, Node<T>)>),
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        RTree::new()
    }
}

impl<T> RTree<T> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        RTree { root: Node::Leaf(Vec::new()), len: 0 }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an entry. Duplicate boxes are allowed.
    pub fn insert(&mut self, bbox: BoundingBox, value: T) {
        self.len += 1;
        if let Some((left, right)) = insert_rec(&mut self.root, bbox, value) {
            // Root split: grow the tree by one level.
            let old_left_box = node_bbox(&left);
            let old_right_box = node_bbox(&right);
            self.root = Node::Internal(vec![(old_left_box, left), (old_right_box, right)]);
        }
    }

    /// Collects references to every payload whose box intersects `query`
    /// (closed-box semantics; `query` corners may be infinite).
    pub fn search(&self, query: BoundingBox) -> Vec<&T> {
        let mut out = Vec::new();
        self.visit(query, &mut |v| out.push(v));
        out
    }

    /// Visits every payload whose box intersects `query`.
    pub fn visit<'a, F: FnMut(&'a T)>(&'a self, query: BoundingBox, f: &mut F) {
        visit_rec(&self.root, query, f);
    }

    /// Iterates over all entries (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&BoundingBox, &T)> {
        let mut stack = vec![&self.root];
        let mut leaf_items: Vec<(&BoundingBox, &T)> = Vec::new();
        while let Some(node) = stack.pop() {
            match node {
                Node::Leaf(items) => leaf_items.extend(items.iter().map(|(b, v)| (b, v))),
                Node::Internal(children) => stack.extend(children.iter().map(|(_, n)| n)),
            }
        }
        leaf_items.into_iter()
    }

    /// Height of the tree (1 for a single leaf). Exposed for tests and
    /// diagnostics.
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Internal(children) = node {
            h += 1;
            node = &children[0].1;
        }
        h
    }
}

fn visit_rec<'a, T, F: FnMut(&'a T)>(node: &'a Node<T>, query: BoundingBox, f: &mut F) {
    match node {
        Node::Leaf(items) => {
            for (b, v) in items {
                if b.intersects(query) {
                    f(v);
                }
            }
        }
        Node::Internal(children) => {
            for (b, child) in children {
                if b.intersects(query) {
                    visit_rec(child, query, f);
                }
            }
        }
    }
}

fn node_bbox<T>(node: &Node<T>) -> BoundingBox {
    match node {
        Node::Leaf(items) => items
            .iter()
            .map(|(b, _)| *b)
            .reduce(BoundingBox::union)
            .expect("split nodes are non-empty"),
        Node::Internal(children) => children
            .iter()
            .map(|(b, _)| *b)
            .reduce(BoundingBox::union)
            .expect("split nodes are non-empty"),
    }
}

/// Recursive insert. Returns `Some((left, right))` when `node` overflowed
/// and was split; the caller replaces it with the two halves.
fn insert_rec<T>(node: &mut Node<T>, bbox: BoundingBox, value: T) -> Option<(Node<T>, Node<T>)> {
    match node {
        Node::Leaf(items) => {
            items.push((bbox, value));
            if items.len() <= MAX_ENTRIES {
                return None;
            }
            let (a, b) = quadratic_split(std::mem::take(items));
            Some((Node::Leaf(a), Node::Leaf(b)))
        }
        Node::Internal(children) => {
            let idx = choose_subtree(children, bbox);
            children[idx].0 = children[idx].0.union(bbox);
            if let Some((l, r)) = insert_rec(&mut children[idx].1, bbox, value) {
                children[idx] = (node_bbox(&l), l);
                children.push((node_bbox(&r), r));
                if children.len() > MAX_ENTRIES {
                    let (a, b) = quadratic_split(std::mem::take(children));
                    return Some((Node::Internal(a), Node::Internal(b)));
                }
            }
            None
        }
    }
}

/// Guttman's ChooseLeaf criterion: least area enlargement, ties broken by
/// smaller area.
fn choose_subtree<T>(children: &[(BoundingBox, Node<T>)], bbox: BoundingBox) -> usize {
    let mut best = 0;
    let mut best_enlargement = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for (i, (b, _)) in children.iter().enumerate() {
        let area = b.area();
        let enlargement = b.union(bbox).area() - area;
        if enlargement < best_enlargement
            || (enlargement == best_enlargement && area < best_area)
        {
            best = i;
            best_enlargement = enlargement;
            best_area = area;
        }
    }
    best
}

/// Guttman's quadratic split: seed with the pair wasting the most area,
/// then assign each remaining entry to the group whose box it enlarges
/// least, keeping both groups above `MIN_ENTRIES`.
fn quadratic_split<E: HasBBox>(entries: Vec<E>) -> (Vec<E>, Vec<E>) {
    debug_assert!(entries.len() > MAX_ENTRIES);
    let mut entries = entries;

    // Pick seeds: the pair whose combined box wastes the most area.
    let (mut seed_a, mut seed_b, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let combined = entries[i].bbox().union(entries[j].bbox());
            let waste = combined.area() - entries[i].bbox().area() - entries[j].bbox().area();
            if waste > worst {
                worst = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }

    // Remove seeds (larger index first to keep the smaller valid).
    let e_b = entries.swap_remove(seed_b.max(seed_a));
    let e_a = entries.swap_remove(seed_b.min(seed_a));
    let mut group_a = vec![e_a];
    let mut group_b = vec![e_b];
    let mut box_a = group_a[0].bbox();
    let mut box_b = group_b[0].bbox();

    while let Some(entry) = entries.pop() {
        let remaining = entries.len();
        // Force assignment when a group must take everything left to reach
        // the minimum.
        if group_a.len() + remaining < MIN_ENTRIES {
            box_a = box_a.union(entry.bbox());
            group_a.push(entry);
            continue;
        }
        if group_b.len() + remaining < MIN_ENTRIES {
            box_b = box_b.union(entry.bbox());
            group_b.push(entry);
            continue;
        }
        let enlarge_a = box_a.union(entry.bbox()).area() - box_a.area();
        let enlarge_b = box_b.union(entry.bbox()).area() - box_b.area();
        if enlarge_a < enlarge_b || (enlarge_a == enlarge_b && group_a.len() <= group_b.len()) {
            box_a = box_a.union(entry.bbox());
            group_a.push(entry);
        } else {
            box_b = box_b.union(entry.bbox());
            group_b.push(entry);
        }
    }
    (group_a, group_b)
}

trait HasBBox {
    fn bbox(&self) -> BoundingBox;
}

impl<T> HasBBox for (BoundingBox, T) {
    fn bbox(&self) -> BoundingBox {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardir_geometry::Point;

    fn bb(x0: f64, y0: f64, x1: f64, y1: f64) -> BoundingBox {
        BoundingBox::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    fn grid_tree(n: usize) -> RTree<usize> {
        let mut t = RTree::new();
        let cols = 16;
        for i in 0..n {
            let x = (i % cols) as f64 * 10.0;
            let y = (i / cols) as f64 * 10.0;
            t.insert(bb(x, y, x + 4.0, y + 4.0), i);
        }
        t
    }

    #[test]
    fn empty_tree() {
        let t: RTree<u32> = RTree::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.search(bb(0.0, 0.0, 100.0, 100.0)).is_empty());
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn insert_and_search_small() {
        let mut t = RTree::new();
        t.insert(bb(0.0, 0.0, 1.0, 1.0), "a");
        t.insert(bb(5.0, 5.0, 6.0, 6.0), "b");
        assert_eq!(t.len(), 2);
        let hits = t.search(bb(0.5, 0.5, 5.5, 5.5));
        assert_eq!(hits.len(), 2);
        let hits = t.search(bb(2.0, 2.0, 3.0, 3.0));
        assert!(hits.is_empty());
    }

    #[test]
    fn grows_beyond_one_node_and_stays_correct() {
        let t = grid_tree(300);
        assert_eq!(t.len(), 300);
        assert!(t.height() > 1);
        // Exhaustive check against a linear scan over several queries.
        let queries = [
            bb(0.0, 0.0, 35.0, 35.0),
            bb(50.0, 50.0, 52.0, 52.0),
            bb(-10.0, -10.0, -1.0, -1.0),
            bb(0.0, 0.0, 1000.0, 1000.0),
        ];
        let all: Vec<(BoundingBox, usize)> = t.iter().map(|(b, v)| (*b, *v)).collect();
        assert_eq!(all.len(), 300);
        for q in queries {
            let mut expected: Vec<usize> =
                all.iter().filter(|(b, _)| b.intersects(q)).map(|(_, v)| *v).collect();
            let mut got: Vec<usize> = t.search(q).into_iter().copied().collect();
            expected.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expected, "query {q}");
        }
    }

    #[test]
    fn search_with_infinite_bounds() {
        let t = grid_tree(64);
        // "Everything west of x = 35": an unbounded tile query.
        let q = BoundingBox::new(
            Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
            Point::new(35.0, f64::INFINITY),
        );
        let got = t.search(q).len();
        let expected = t.iter().filter(|(b, _)| b.min.x <= 35.0).count();
        assert_eq!(got, expected);
        assert!(got > 0);
    }

    #[test]
    fn touching_boxes_intersect() {
        let mut t = RTree::new();
        t.insert(bb(0.0, 0.0, 1.0, 1.0), 1);
        let hits = t.search(bb(1.0, 1.0, 2.0, 2.0)); // shares a corner
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn duplicates_are_kept() {
        let mut t = RTree::new();
        for i in 0..20 {
            t.insert(bb(0.0, 0.0, 1.0, 1.0), i);
        }
        assert_eq!(t.len(), 20);
        assert_eq!(t.search(bb(0.0, 0.0, 1.0, 1.0)).len(), 20);
    }

    #[test]
    fn randomised_against_linear_scan() {
        use cardir_workloads::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(17);
        let mut t = RTree::new();
        let mut reference: Vec<(BoundingBox, usize)> = Vec::new();
        for i in 0..500 {
            let x = rng.random_range(-100.0..100.0);
            let y = rng.random_range(-100.0..100.0);
            let w = rng.random_range(0.0..20.0);
            let h = rng.random_range(0.0..20.0);
            let b = bb(x, y, x + w, y + h);
            t.insert(b, i);
            reference.push((b, i));
        }
        for _ in 0..50 {
            let x = rng.random_range(-120.0..120.0);
            let y = rng.random_range(-120.0..120.0);
            let w = rng.random_range(0.0..60.0);
            let h = rng.random_range(0.0..60.0);
            let q = bb(x, y, x + w, y + h);
            let mut expected: Vec<usize> =
                reference.iter().filter(|(b, _)| b.intersects(q)).map(|(_, v)| *v).collect();
            let mut got: Vec<usize> = t.search(q).into_iter().copied().collect();
            expected.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expected);
        }
    }
}
