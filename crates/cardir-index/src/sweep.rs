//! Plane-sweep interval stabbing: the bulk primitive behind the spatial
//! join.
//!
//! The join has to answer one question for every region pair: does the
//! primary's closed MBB interval (on either axis) contain one of the
//! reference's grid coordinates? Asked pair by pair that is Θ(n²); asked
//! all at once it is a batch *stabbing* problem — `n` closed intervals,
//! `q` query points, report every containment — which one left-to-right
//! sweep answers in `O((n + q)·log(n + q) + K)` where `K` is the number
//! of containments reported.
//!
//! The sweep keeps closed-interval semantics throughout: a point equal
//! to an endpoint *is* contained, zero-width intervals `[v, v]` stab
//! exactly the points equal to `v`, and duplicate coordinates are each
//! reported. That is precisely the conservative contact behaviour the
//! MBB prefilter needs — a box that merely touches a grid line must be
//! routed to the exact pipeline, so the sweep must report the touch.

/// A closed interval `[lo, hi]` on one axis.
///
/// Intervals with `lo > hi` are permitted and contain nothing (the sweep
/// never reports them); NaN endpoints are not supported.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower endpoint (inclusive).
    pub lo: f64,
    /// Upper endpoint (inclusive).
    pub hi: f64,
}

impl Interval {
    /// A closed interval `[lo, hi]`.
    pub fn new(lo: f64, hi: f64) -> Self {
        Interval { lo, hi }
    }

    /// Closed containment: `lo <= p && p <= hi`.
    #[inline]
    pub fn contains(&self, p: f64) -> bool {
        self.lo <= p && p <= self.hi
    }
}

/// Reports every `(interval, point)` containment pair with one sweep:
/// `visit(i, p)` is called exactly once for each `i`, `p` with
/// `intervals[i].contains(points[p])`, grouped by ascending point value
/// (ties in input order); within one point the interval order is
/// unspecified.
///
/// Cost: two interval sorts, one point sort, then `O(1)` amortised per
/// activation/deactivation and `O(1)` per reported containment.
pub fn sweep_stabs<F: FnMut(usize, usize)>(intervals: &[Interval], points: &[f64], visit: &mut F) {
    if intervals.is_empty() || points.is_empty() {
        return;
    }
    debug_assert!(
        intervals.iter().all(|iv| !iv.lo.is_nan() && !iv.hi.is_nan())
            && points.iter().all(|p| !p.is_nan()),
        "sweep_stabs does not support NaN coordinates"
    );
    // Inverted intervals contain nothing, and worse: their `hi` event
    // would retire before their `lo` event activates, leaving them stuck
    // in the active set forever once activated. Drop them up front. The
    // numeric comparison (not total_cmp) is deliberate — it keeps
    // `[0.0, -0.0]`, which contains 0 under closed `<=` containment.
    let live: Vec<u32> = (0..intervals.len() as u32)
        .filter(|&i| intervals[i as usize].lo <= intervals[i as usize].hi)
        .collect();
    let mut by_lo = live.clone();
    by_lo.sort_unstable_by(|&a, &b| intervals[a as usize].lo.total_cmp(&intervals[b as usize].lo));
    let mut by_hi = live;
    by_hi.sort_unstable_by(|&a, &b| intervals[a as usize].hi.total_cmp(&intervals[b as usize].hi));
    let mut pt_order: Vec<u32> = (0..points.len() as u32).collect();
    pt_order.sort_unstable_by(|&a, &b| points[a as usize].total_cmp(&points[b as usize]));

    // Active set as a dense vector plus a position index, so
    // deactivation is O(1) via swap_remove.
    const INACTIVE: u32 = u32::MAX;
    let mut active: Vec<u32> = Vec::new();
    let mut pos: Vec<u32> = vec![INACTIVE; intervals.len()];
    let (mut next_lo, mut next_hi) = (0usize, 0usize);
    for &p_idx in &pt_order {
        let p = points[p_idx as usize];
        // Activate before deactivating: an interval with lo <= p <= hi
        // must be visible at p even if this is the first point past lo.
        // Since lo <= hi for every live interval, an interval due for
        // deactivation (hi < p) has always been activated already.
        while next_lo < by_lo.len() && intervals[by_lo[next_lo] as usize].lo <= p {
            let i = by_lo[next_lo];
            pos[i as usize] = active.len() as u32;
            active.push(i);
            next_lo += 1;
        }
        while next_hi < by_hi.len() && intervals[by_hi[next_hi] as usize].hi < p {
            let i = by_hi[next_hi];
            next_hi += 1;
            let at = pos[i as usize];
            debug_assert_ne!(at, INACTIVE, "live intervals activate before they retire");
            let last = *active.last().expect("an active slot exists at `at`");
            active.swap_remove(at as usize);
            pos[last as usize] = at;
            pos[i as usize] = INACTIVE;
        }
        for &i in &active {
            visit(i as usize, p_idx as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// Every containment exactly once, cross-checked against the
    /// quadratic oracle.
    fn assert_matches_oracle(intervals: &[Interval], points: &[f64]) {
        let mut reported = Vec::new();
        sweep_stabs(intervals, points, &mut |i, p| reported.push((i, p)));
        let mut seen = BTreeSet::new();
        for &(i, p) in &reported {
            assert!(
                intervals[i].contains(points[p]),
                "spurious report: interval {i} {:?} does not contain point {p} = {}",
                intervals[i],
                points[p]
            );
            assert!(seen.insert((i, p)), "duplicate report ({i}, {p})");
        }
        for (i, iv) in intervals.iter().enumerate() {
            for (p, &v) in points.iter().enumerate() {
                if iv.contains(v) {
                    assert!(seen.contains(&(i, p)), "missed containment ({i}, {p}): {iv:?} ∋ {v}");
                }
            }
        }
    }

    /// Tiny deterministic LCG so the test needs no workload dependency.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0 >> 33
        }
        fn coord(&mut self) -> f64 {
            // Half-integer lattice in [-16, 16]: plenty of exact ties.
            (self.next() % 65) as f64 / 2.0 - 16.0
        }
    }

    #[test]
    fn random_lattice_matches_quadratic_oracle() {
        let mut rng = Lcg(2004);
        for round in 0..50 {
            let n = 1 + (rng.next() % 12) as usize;
            let q = 1 + (rng.next() % 20) as usize;
            let intervals: Vec<Interval> = (0..n)
                .map(|_| {
                    let (a, b) = (rng.coord(), rng.coord());
                    // Mix proper, zero-width, and (rarely) inverted.
                    match rng.next() % 8 {
                        0 => Interval::new(a, a),
                        1 => Interval::new(a.max(b) + 0.5, a.min(b)), // inverted: empty
                        _ => Interval::new(a.min(b), a.max(b)),
                    }
                })
                .collect();
            let points: Vec<f64> = (0..q).map(|_| rng.coord()).collect();
            assert_matches_oracle(&intervals, &points);
            let _ = round;
        }
    }

    #[test]
    fn zero_width_interval_stabs_exactly_its_point() {
        let intervals = [Interval::new(3.0, 3.0)];
        let points = [2.0, 3.0, 3.0, 4.0];
        let mut hits = Vec::new();
        sweep_stabs(&intervals, &points, &mut |i, p| hits.push((i, p)));
        hits.sort_unstable();
        assert_eq!(hits, vec![(0, 1), (0, 2)], "both duplicate points at 3.0, nothing else");
    }

    #[test]
    fn boundary_contact_is_closed_on_both_ends() {
        let intervals = [Interval::new(1.0, 5.0)];
        let points = [0.5, 1.0, 3.0, 5.0, 5.5];
        let mut hits = Vec::new();
        sweep_stabs(&intervals, &points, &mut |_, p| hits.push(p));
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 2, 3], "lo and hi endpoints are contained, outside points not");
    }

    #[test]
    fn point_interval_on_point_query() {
        // The fully degenerate case: a point box meeting a point query.
        assert_matches_oracle(&[Interval::new(0.0, 0.0)], &[0.0]);
        let mut count = 0;
        sweep_stabs(&[Interval::new(0.0, 0.0)], &[0.0], &mut |_, _| count += 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn empty_inputs_visit_nothing() {
        let mut count = 0;
        sweep_stabs(&[], &[1.0], &mut |_, _| count += 1);
        sweep_stabs(&[Interval::new(0.0, 1.0)], &[], &mut |_, _| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn shared_endpoints_all_report() {
        // Many intervals ending exactly where others begin, queried
        // exactly at the shared coordinate — the grid-line contact case.
        let intervals = [
            Interval::new(0.0, 2.0),
            Interval::new(2.0, 4.0),
            Interval::new(2.0, 2.0),
            Interval::new(-1.0, 1.0),
        ];
        let points = [2.0];
        let mut hit: Vec<usize> = Vec::new();
        sweep_stabs(&intervals, &points, &mut |i, _| hit.push(i));
        hit.sort_unstable();
        assert_eq!(hit, vec![0, 1, 2]);
    }

    #[test]
    fn negative_zero_counts_as_zero() {
        // total_cmp orders -0.0 < 0.0, but closed containment uses <=,
        // which treats them as equal; the sweep must agree with the
        // oracle on the mixed-zero case.
        assert_matches_oracle(&[Interval::new(-0.0, 0.0), Interval::new(0.0, 0.0)], &[-0.0, 0.0]);
    }
}
