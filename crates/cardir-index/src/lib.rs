//! An R-tree over minimum bounding boxes.
//!
//! CARDIRECT answers queries that join annotated regions through cardinal
//! direction predicates. A direction predicate `a R b` constrains where
//! `mbb(a)` may lie relative to the grid lines of `mbb(b)` (`a` must be
//! contained in the hull of `R`'s tiles), so candidate regions can be
//! retrieved with a rectangle search — the classic GIS filter step. This
//! crate provides that index: a dynamic R-tree with quadratic node splits
//! (Guttman's algorithm), generic over the stored payload.
//!
//! Search rectangles may have infinite extents (e.g. "everything west of
//! `x = m1`"), which is exactly what the unbounded peripheral tiles need.
//!
//! # Example
//!
//! ```
//! use cardir_geometry::{BoundingBox, Point};
//! use cardir_index::RTree;
//!
//! let mut tree = RTree::new();
//! for i in 0..100 {
//!     let x = (i % 10) as f64 * 10.0;
//!     let y = (i / 10) as f64 * 10.0;
//!     tree.insert(BoundingBox::new(Point::new(x, y), Point::new(x + 5.0, y + 5.0)), i);
//! }
//! let hits = tree.search(BoundingBox::new(Point::new(0.0, 0.0), Point::new(16.0, 16.0)));
//! assert_eq!(hits.len(), 4);
//! ```

mod rtree;
mod sweep;

pub use rtree::RTree;
pub use sweep::{sweep_stabs, Interval};
