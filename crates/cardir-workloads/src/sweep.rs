//! Parameter sweeps shared by the benchmark harness and the experiment
//! binaries.

/// Doubling sweep `from, 2·from, …` up to and including `to` (when `to` is
/// on the doubling grid).
pub fn doubling(from: usize, to: usize) -> Vec<usize> {
    assert!(from >= 1 && from <= to);
    let mut v = Vec::new();
    let mut k = from;
    while k <= to {
        v.push(k);
        k *= 2;
    }
    v
}

/// The edge-count sweep used by the Theorem 1/2 scaling experiments.
pub fn edge_sweep() -> Vec<usize> {
    doubling(64, 65536)
}

/// The map-size sweep used by the query-evaluation ablation.
pub fn map_sweep() -> Vec<usize> {
    doubling(16, 4096)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubling_grid() {
        assert_eq!(doubling(4, 32), vec![4, 8, 16, 32]);
        assert_eq!(doubling(3, 20), vec![3, 6, 12]);
        assert_eq!(doubling(5, 5), vec![5]);
    }

    #[test]
    fn standard_sweeps_are_nonempty() {
        assert_eq!(edge_sweep().first(), Some(&64));
        assert_eq!(edge_sweep().last(), Some(&65536));
        assert_eq!(map_sweep().last(), Some(&4096));
    }
}
