//! Synthetic annotated maps for query-evaluation workloads.
//!
//! CARDIRECT queries join regions by thematic attributes and cardinal
//! direction predicates; evaluating them scales with the number of
//! annotated regions. These generators produce maps with `n` labelled,
//! coloured regions scattered over an extent — the workload for the
//! query-evaluation and R-tree ablation benchmarks.

use crate::polygons::star_polygon;
use crate::rng::SplitMix64;
use cardir_geometry::{BoundingBox, Point, Region};

/// One annotated region of a synthetic map.
#[derive(Debug, Clone)]
pub struct MapRegion {
    /// Unique identifier, `r0`, `r1`, ….
    pub id: String,
    /// Colour drawn from [`COLORS`].
    pub color: &'static str,
    /// Geometry.
    pub region: Region,
}

/// The colour palette used by generated maps.
pub const COLORS: [&str; 5] = ["blue", "red", "black", "green", "yellow"];

/// Generates a map of `n` star-shaped regions with random colours inside
/// `extent`. Regions are laid out on a jittered grid so they rarely
/// overlap, like annotated areas on a real map.
pub fn random_map(rng: &mut SplitMix64, n: usize, extent: BoundingBox) -> Vec<MapRegion> {
    assert!(n >= 1);
    let cols = (n as f64).sqrt().ceil() as usize;
    let rows = n.div_ceil(cols);
    let pitch_x = extent.width() / cols as f64;
    let pitch_y = extent.height() / rows as f64;
    // Centres sit ≥ 0.4·pitch from the extent boundary after ±0.1·pitch
    // jitter, so radii up to 0.38·min-pitch keep regions inside.
    let r_max = pitch_x.min(pitch_y) * 0.38;
    let r_min = r_max * 0.3;
    (0..n)
        .map(|i| {
            let col = (i % cols) as f64;
            let row = (i / cols) as f64;
            let jx = rng.random_range(-0.1..0.1) * pitch_x;
            let jy = rng.random_range(-0.1..0.1) * pitch_y;
            let c = Point::new(
                extent.min.x + (col + 0.5) * pitch_x + jx,
                extent.min.y + (row + 0.5) * pitch_y + jy,
            );
            let vertices = rng.random_range(6..=14usize);
            let color = COLORS[rng.random_range(0..COLORS.len())];
            MapRegion {
                id: format!("r{i}"),
                color,
                region: Region::single(star_polygon(rng, c, r_min, r_max, vertices)),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extent() -> BoundingBox {
        BoundingBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 800.0))
    }

    #[test]
    fn map_has_n_unique_regions_inside_extent() {
        let mut rng = SplitMix64::seed_from_u64(9);
        let map = random_map(&mut rng, 40, extent());
        assert_eq!(map.len(), 40);
        let mut ids: Vec<_> = map.iter().map(|r| r.id.clone()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 40);
        for r in &map {
            assert!(extent().contains_box(r.region.mbb()), "{}", r.id);
            assert!(COLORS.contains(&r.color));
        }
    }

    #[test]
    fn single_region_map() {
        let mut rng = SplitMix64::seed_from_u64(1);
        let map = random_map(&mut rng, 1, extent());
        assert_eq!(map.len(), 1);
        assert_eq!(map[0].id, "r0");
    }
}
