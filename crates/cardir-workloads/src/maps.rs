//! Synthetic annotated maps for query-evaluation workloads.
//!
//! CARDIRECT queries join regions by thematic attributes and cardinal
//! direction predicates; evaluating them scales with the number of
//! annotated regions. These generators produce maps with `n` labelled,
//! coloured regions scattered over an extent — the workload for the
//! query-evaluation and R-tree ablation benchmarks.

use crate::polygons::star_polygon;
use crate::rng::SplitMix64;
use cardir_geometry::{BoundingBox, Point, Region};

/// One annotated region of a synthetic map.
#[derive(Debug, Clone)]
pub struct MapRegion {
    /// Unique identifier, `r0`, `r1`, ….
    pub id: String,
    /// Colour drawn from [`COLORS`].
    pub color: &'static str,
    /// Geometry.
    pub region: Region,
}

/// The colour palette used by generated maps.
pub const COLORS: [&str; 5] = ["blue", "red", "black", "green", "yellow"];

/// Generates a map of `n` star-shaped regions with random colours inside
/// `extent`. Regions are laid out on a jittered grid so they rarely
/// overlap, like annotated areas on a real map.
pub fn random_map(rng: &mut SplitMix64, n: usize, extent: BoundingBox) -> Vec<MapRegion> {
    assert!(n >= 1);
    let cols = (n as f64).sqrt().ceil() as usize;
    let rows = n.div_ceil(cols);
    let pitch_x = extent.width() / cols as f64;
    let pitch_y = extent.height() / rows as f64;
    (0..n)
        .map(|i| {
            let col = (i % cols) as f64;
            let row = (i / cols) as f64;
            let (color, region) = star_cell(
                rng,
                extent.min.x + (col + 0.5) * pitch_x,
                extent.min.y + (row + 0.5) * pitch_y,
                pitch_x,
                pitch_y,
            );
            MapRegion { id: format!("r{i}"), color, region }
        })
        .collect()
}

/// Generates exactly one star-shaped region filling `extent`'s single
/// grid cell — the per-edit generator for scripted workloads.
///
/// The RNG draw sequence is the per-cell sequence of [`random_map`] and
/// is deliberately independent of `random_map`'s grid layout, so code
/// that consumes one region per draw (fuzz edit scripts with pinned
/// seeds) does not shift its RNG stream when the map generator's layout
/// internals change. `random_region(rng, extent)` is draw-for-draw
/// identical to `random_map(rng, 1, extent).remove(0)`.
pub fn random_region(rng: &mut SplitMix64, extent: BoundingBox) -> MapRegion {
    let pitch_x = extent.width();
    let pitch_y = extent.height();
    let (color, region) = star_cell(
        rng,
        extent.min.x + 0.5 * pitch_x,
        extent.min.y + 0.5 * pitch_y,
        pitch_x,
        pitch_y,
    );
    MapRegion { id: "r0".to_string(), color, region }
}

/// One jittered star in the grid cell centred at `(cx, cy)` with the
/// given pitch: the shared draw sequence of [`random_map`] and
/// [`random_region`] — jitter-x, jitter-y, vertex count, colour, then
/// the [`star_polygon`] draws.
fn star_cell(
    rng: &mut SplitMix64,
    cx: f64,
    cy: f64,
    pitch_x: f64,
    pitch_y: f64,
) -> (&'static str, Region) {
    // Centres sit ≥ 0.4·pitch from the cell boundary after ±0.1·pitch
    // jitter, so radii up to 0.38·min-pitch keep regions inside.
    let r_max = pitch_x.min(pitch_y) * 0.38;
    let r_min = r_max * 0.3;
    let jx = rng.random_range(-0.1..0.1) * pitch_x;
    let jy = rng.random_range(-0.1..0.1) * pitch_y;
    let c = Point::new(cx + jx, cy + jy);
    let vertices = rng.random_range(6..=14usize);
    let color = COLORS[rng.random_range(0..COLORS.len())];
    (color, Region::single(star_polygon(rng, c, r_min, r_max, vertices)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extent() -> BoundingBox {
        BoundingBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 800.0))
    }

    #[test]
    fn map_has_n_unique_regions_inside_extent() {
        let mut rng = SplitMix64::seed_from_u64(9);
        let map = random_map(&mut rng, 40, extent());
        assert_eq!(map.len(), 40);
        let mut ids: Vec<_> = map.iter().map(|r| r.id.clone()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 40);
        for r in &map {
            assert!(extent().contains_box(r.region.mbb()), "{}", r.id);
            assert!(COLORS.contains(&r.color));
        }
    }

    #[test]
    fn single_region_map() {
        let mut rng = SplitMix64::seed_from_u64(1);
        let map = random_map(&mut rng, 1, extent());
        assert_eq!(map.len(), 1);
        assert_eq!(map[0].id, "r0");
    }

    #[test]
    fn random_region_is_draw_identical_to_a_single_region_map() {
        // The single-region generator exists so scripted workloads can
        // consume one region per draw without depending on random_map's
        // grid internals — but its RNG stream is pinned to the n=1 map's:
        // same seed, bit-identical geometry, colour, and RNG state after.
        for seed in [1u64, 9, 42, 0xdead_beef] {
            let mut a = SplitMix64::seed_from_u64(seed);
            let mut b = SplitMix64::seed_from_u64(seed);
            let via_map = random_map(&mut a, 1, extent()).remove(0);
            let direct = random_region(&mut b, extent());
            assert_eq!(direct.color, via_map.color);
            assert_eq!(direct.region.mbb(), via_map.region.mbb());
            assert_eq!(
                direct.region.polygons().len(),
                via_map.region.polygons().len()
            );
            // The RNG states must agree afterwards too, or the *next*
            // draw of a script would diverge.
            assert_eq!(a.random_range(0..u64::MAX), b.random_range(0..u64::MAX));
        }
    }
}
