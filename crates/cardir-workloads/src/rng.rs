//! A vendored, dependency-free deterministic PRNG.
//!
//! The workspace builds with **no external crates** (the build
//! environment has no registry access), so instead of `rand` every
//! generator uses [`SplitMix64`] — the 64-bit mixing generator of Steele,
//! Lea & Flood, *Fast Splittable Pseudorandom Number Generators*
//! (OOPSLA 2014). It is tiny (one `u64` of state), statistically solid
//! for workload generation, and trivially seeded, which keeps every
//! workload reproducible from a single `u64`.
//!
//! The API mirrors the subset of `rand::Rng` the repository used:
//! [`SplitMix64::random_range`] over float and integer ranges, plus
//! `next_u64` / `next_f64` / `random_bool` primitives.
//!
//! ```
//! use cardir_workloads::SplitMix64;
//!
//! let mut rng = SplitMix64::seed_from_u64(7);
//! let x = rng.random_range(-1.0..1.0);
//! assert!((-1.0..1.0).contains(&x));
//! let n = rng.random_range(3usize..10);
//! assert!((3..10).contains(&n));
//! // Determinism: the same seed replays the same stream.
//! assert_eq!(
//!     SplitMix64::seed_from_u64(7).next_u64(),
//!     SplitMix64::seed_from_u64(7).next_u64(),
//! );
//! ```

use std::ops::{Range, RangeInclusive};

/// Deterministic 64-bit PRNG (SplitMix64), the workspace's only
/// randomness source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

/// Weyl-sequence increment (the golden-ratio constant of SplitMix64).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Named after the `rand`
    /// method it replaces so ported call sites read identically.
    #[inline]
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (mirroring
    /// `rand::Rng::random_bool`).
    #[inline]
    pub fn random_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.next_f64() < p
    }

    /// A uniform sample from a float or integer range, e.g.
    /// `rng.random_range(-6.0..6.0)` or `rng.random_range(0..len)`.
    ///
    /// Integer sampling uses a modulo reduction: the bias is below
    /// 2⁻⁴⁰ for every span this workspace uses (< 2²⁴), which is
    /// irrelevant for workload generation.
    #[inline]
    pub fn random_range<R: RandomRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// Range types [`SplitMix64::random_range`] can sample from.
pub trait RandomRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut SplitMix64) -> Self::Output;
}

impl RandomRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut SplitMix64) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl RandomRange for RangeInclusive<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut SplitMix64) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl RandomRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut SplitMix64) -> $t {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl RandomRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut SplitMix64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_splitmix64_vectors() {
        // Reference outputs for seed 1234567 from the canonical C
        // implementation (Vigna, prng.di.unimi.it/splitmix64.c).
        let mut rng = SplitMix64::seed_from_u64(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        assert_eq!(rng.next_u64(), 9817491932198370423);
    }

    #[test]
    fn determinism_and_divergence() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SplitMix64::seed_from_u64(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.random_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&x));
            let y = rng.random_range(2.0..=2.5);
            assert!((2.0..=2.5).contains(&y));
        }
        // Degenerate inclusive range is allowed and returns its endpoint.
        assert_eq!(rng.random_range(7.0..=7.0), 7.0);
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(10);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 7 values should appear");
        for _ in 0..100 {
            let v = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&v));
        }
        assert_eq!(rng.random_range(4u16..=4), 4);
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = SplitMix64::seed_from_u64(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        // Mean of U(0,1) over 10k draws: comfortably inside (0.45, 0.55).
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn bools_are_balanced() {
        let mut rng = SplitMix64::seed_from_u64(12);
        let trues = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_500..5_500).contains(&trues), "{trues} trues");
        let rare = (0..10_000).filter(|_| rng.random_bool(0.1)).count();
        assert!((700..1_300).contains(&rare), "{rare} rare trues");
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
