//! Random simple-polygon generators.
//!
//! The complexity experiments (Theorems 1 and 2) need polygons with a
//! controlled edge count `k`; the comparison against clipping needs shapes
//! whose edges cross the reference grid lines often. Two generators cover
//! this:
//!
//! * [`star_polygon`] — a radial ("star-shaped") polygon: `n` vertices at
//!   strictly increasing angles around a centre, with jittered radii.
//!   Always simple, arbitrary `n`, organic-looking.
//! * [`comb_polygon`] — a comb with `teeth` prongs: adversarial input
//!   whose edges cross a horizontal line `2·teeth` times, maximising edge
//!   divisions and clipped fragments.

use crate::rng::SplitMix64;
use cardir_geometry::{Point, Polygon};

/// Generates a simple polygon with `n ≥ 3` vertices, star-shaped around
/// `center`, with radii drawn uniformly from `[r_min, r_max]`.
///
/// Vertices are placed at evenly spaced angles with ±40 % jitter, keeping
/// the angular order strictly increasing — which guarantees simplicity.
pub fn star_polygon(
    rng: &mut SplitMix64,
    center: Point,
    r_min: f64,
    r_max: f64,
    n: usize,
) -> Polygon {
    assert!(n >= 3, "a polygon needs at least 3 vertices");
    assert!(0.0 < r_min && r_min <= r_max, "radii must be positive and ordered");
    let step = std::f64::consts::TAU / n as f64;
    let vertices = (0..n).map(|i| {
        let jitter = rng.random_range(-0.4..0.4) * step;
        let angle = i as f64 * step + jitter;
        let r = rng.random_range(r_min..=r_max);
        Point::new(center.x + r * angle.cos(), center.y + r * angle.sin())
    });
    Polygon::new(vertices).expect("star polygons are simple and non-degenerate")
}

/// Generates a comb-shaped simple polygon with the given number of teeth.
///
/// The comb spans `x ∈ [x0, x0 + 2·teeth·pitch]`; its back sits at
/// `y = y_base` and the teeth reach `y = y_tip`. Any horizontal line
/// strictly between base and tip crosses `2·teeth` edges — the worst case
/// for both edge division and clipping.
pub fn comb_polygon(x0: f64, y_base: f64, y_tip: f64, pitch: f64, teeth: usize) -> Polygon {
    assert!(teeth >= 1);
    assert!(pitch > 0.0);
    assert!(y_tip != y_base);
    let mut vs: Vec<Point> = Vec::with_capacity(4 * teeth + 2);
    let mut x = x0;
    for _ in 0..teeth {
        vs.push(Point::new(x, y_base));
        vs.push(Point::new(x, y_tip));
        vs.push(Point::new(x + pitch, y_tip));
        vs.push(Point::new(x + pitch, y_base));
        x += 2.0 * pitch;
    }
    // Close along the spine, slightly below the base.
    let spine = y_base - (y_tip - y_base).abs() * 0.25;
    vs.push(Point::new(x - pitch, spine));
    vs.push(Point::new(x0, spine));
    Polygon::new(vs).expect("comb polygons are simple and non-degenerate")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_polygons_are_simple_with_exact_edge_count() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for n in [3, 8, 64, 257] {
            let p = star_polygon(&mut rng, Point::new(1.0, -2.0), 2.0, 5.0, n);
            assert_eq!(p.len(), n);
            assert!(p.is_simple(), "n = {n}");
            assert!(p.area() > 0.0);
        }
    }

    #[test]
    fn star_polygon_respects_radius_bounds() {
        let mut rng = SplitMix64::seed_from_u64(11);
        let c = Point::new(0.0, 0.0);
        let p = star_polygon(&mut rng, c, 3.0, 4.0, 32);
        for v in p.vertices() {
            let r = v.distance(c);
            assert!((3.0..=4.0).contains(&r), "radius {r}");
        }
    }

    #[test]
    fn comb_polygon_crosses_a_line_2t_times() {
        let teeth = 5;
        let p = comb_polygon(0.0, 0.0, 4.0, 1.0, teeth);
        assert!(p.is_simple());
        let line = cardir_geometry::Line::Horizontal(2.0);
        let crossings = p.edges().filter(|e| e.crossed_by(line)).count();
        assert_eq!(crossings, 2 * teeth);
    }

    #[test]
    fn determinism_under_seed() {
        let mk = || {
            let mut rng = SplitMix64::seed_from_u64(42);
            star_polygon(&mut rng, Point::new(0.0, 0.0), 1.0, 2.0, 16)
        };
        assert_eq!(mk(), mk());
    }
}
