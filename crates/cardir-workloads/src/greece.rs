//! The Ancient-Greece scenario of the paper's Fig. 11/12.
//!
//! The paper's CARDIRECT screenshots annotate a map of Greece at the time
//! of the Peloponnesian war with three sets of regions: the *Athenean
//! Alliance* (blue), the *Spartan Alliance* (red) and the *Pro-Spartan*
//! regions (black). The actual map image is unavailable, so the regions
//! are reconstructed on a 1000 × 800 coordinate space (x east, y north)
//! with the properties the paper states preserved exactly:
//!
//! * `Peloponnesos B:S:SW:W Attica` (left side of Fig. 12);
//! * Attica lies to the (north-)east of Peloponnesos, giving the
//!   NE/E-heavy percentage matrix on the right side of Fig. 12;
//! * the Section-4 query — Athenean regions surrounded by a Spartan
//!   region — has a non-empty answer: the island of *Aegina* sits in a
//!   bay of Peloponnesos that occupies all eight peripheral tiles around
//!   it (and Peloponnesos is modelled as a two-polygon `REG*` region,
//!   exercising composite-region support as Fig. 11's island chains do).

use cardir_geometry::{Polygon, Region};

/// Alliance colours as the paper uses them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Alliance {
    /// The Athenean Alliance — blue in Fig. 11.
    Athenean,
    /// The Spartan Alliance — red in Fig. 11.
    Spartan,
    /// Pro-Spartan regions — black in Fig. 11.
    ProSpartan,
}

impl Alliance {
    /// The colour name the paper's configuration uses.
    pub const fn color(self) -> &'static str {
        match self {
            Alliance::Athenean => "blue",
            Alliance::Spartan => "red",
            Alliance::ProSpartan => "black",
        }
    }
}

/// One annotated region of the scenario.
#[derive(Debug, Clone)]
pub struct GreeceRegion {
    /// Region name as in Fig. 11 (e.g. `"Attica"`).
    pub name: &'static str,
    /// Alliance membership (determines the colour).
    pub alliance: Alliance,
    /// The polygon geometry.
    pub region: Region,
}

fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Polygon {
    Polygon::from_coords([(x0, y0), (x1, y0), (x1, y1), (x0, y1)]).expect("static geometry")
}

fn poly(coords: &[(f64, f64)]) -> Polygon {
    Polygon::from_coords(coords.iter().copied()).expect("static geometry")
}

/// Builds the full scenario: eleven named regions over the 1000 × 800 map.
pub fn scenario() -> Vec<GreeceRegion> {
    use Alliance::*;

    let attica = Region::single(poly(&[
        (470.0, 455.0),
        (505.0, 465.0),
        (530.0, 440.0),
        (515.0, 415.0),
        (484.0, 410.0),
    ]));

    // Peloponnesos: a blob spanning [330,477] × [300,430] with a
    // rectangular bay [450,475] × [385,410] holding Aegina. Decomposed
    // into two simple polygons (split at x = 462) — a REG* region. Its
    // east flank reaches into mbb(Attica) (x ≥ 470, y ≥ 410) without
    // touching Attica's polygon, which is what the B tile of Fig. 12's
    // `B:S:SW:W` needs.
    let peloponnesos = Region::new([
        poly(&[
            (330.0, 430.0),
            (462.0, 430.0),
            (462.0, 410.0),
            (450.0, 410.0),
            (450.0, 385.0),
            (462.0, 385.0),
            (462.0, 300.0),
            (330.0, 300.0),
        ]),
        poly(&[
            (462.0, 430.0),
            (477.0, 430.0),
            (477.0, 300.0),
            (462.0, 300.0),
            (462.0, 385.0),
            (475.0, 385.0),
            (475.0, 410.0),
            (462.0, 410.0),
        ]),
    ])
    .expect("static geometry");

    let aegina = Region::single(rect(455.0, 390.0, 470.0, 405.0));

    let beotia = Region::single(poly(&[
        (420.0, 470.0),
        (500.0, 475.0),
        (505.0, 515.0),
        (430.0, 520.0),
    ]));

    let macedonia = Region::single(poly(&[
        (350.0, 650.0),
        (600.0, 660.0),
        (590.0, 780.0),
        (360.0, 770.0),
    ]));

    // The Aegean islands: a disconnected REG* region (four islands).
    let islands = Region::new([
        rect(560.0, 380.0, 585.0, 402.0),
        rect(600.0, 340.0, 622.0, 360.0),
        rect(640.0, 395.0, 665.0, 420.0),
        rect(615.0, 295.0, 640.0, 318.0),
    ])
    .expect("static geometry");

    // The regions in the East (Ionian coast of Asia Minor).
    let east = Region::single(poly(&[
        (700.0, 350.0),
        (760.0, 345.0),
        (765.0, 550.0),
        (705.0, 555.0),
    ]));

    let corfu = Region::single(rect(180.0, 540.0, 220.0, 580.0));

    let south_italy = Region::single(poly(&[
        (60.0, 560.0),
        (160.0, 565.0),
        (150.0, 700.0),
        (70.0, 695.0),
    ]));

    let sicily = Region::single(poly(&[
        (40.0, 380.0),
        (140.0, 385.0),
        (135.0, 460.0),
        (45.0, 455.0),
    ]));

    let crete = Region::single(poly(&[
        (450.0, 120.0),
        (650.0, 125.0),
        (645.0, 160.0),
        (455.0, 155.0),
    ]));

    vec![
        GreeceRegion { name: "Attica", alliance: Athenean, region: attica },
        GreeceRegion { name: "Islands", alliance: Athenean, region: islands },
        GreeceRegion { name: "East", alliance: Athenean, region: east },
        GreeceRegion { name: "Corfu", alliance: Athenean, region: corfu },
        GreeceRegion { name: "SouthItaly", alliance: Athenean, region: south_italy },
        GreeceRegion { name: "Aegina", alliance: Athenean, region: aegina },
        GreeceRegion { name: "Peloponnesos", alliance: Spartan, region: peloponnesos },
        GreeceRegion { name: "Beotia", alliance: Spartan, region: beotia },
        GreeceRegion { name: "Crete", alliance: Spartan, region: crete },
        GreeceRegion { name: "Sicily", alliance: Spartan, region: sicily },
        GreeceRegion { name: "Macedonia", alliance: ProSpartan, region: macedonia },
    ]
}

/// Looks up one region of the scenario by name.
pub fn region(name: &str) -> Option<GreeceRegion> {
    scenario().into_iter().find(|r| r.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardir_core::{compute_cdr, compute_cdr_pct, CardinalRelation, Tile};

    #[test]
    fn fig12_peloponnesos_vs_attica() {
        let pel = region("Peloponnesos").unwrap().region;
        let att = region("Attica").unwrap().region;
        // The relation the paper reports verbatim.
        assert_eq!(compute_cdr(&pel, &att).to_string(), "B:S:SW:W");
    }

    #[test]
    fn fig12_attica_vs_peloponnesos_is_northeast_heavy() {
        let pel = region("Peloponnesos").unwrap().region;
        let att = region("Attica").unwrap().region;
        let m = compute_cdr_pct(&att, &pel);
        // Attica lies across the NE corner of mbb(Peloponnesos): the
        // percentage mass sits in B/N/NE/E with NE+E dominating.
        let northeastish = m.get(Tile::NE) + m.get(Tile::E) + m.get(Tile::N) + m.get(Tile::B);
        assert!((northeastish - 100.0).abs() < 1e-9, "{m:.1}");
        assert!(m.get(Tile::NE) + m.get(Tile::E) > 50.0, "{m:.1}");
    }

    #[test]
    fn aegina_is_surrounded_by_peloponnesos() {
        let pel = region("Peloponnesos").unwrap().region;
        let aeg = region("Aegina").unwrap().region;
        let surround: CardinalRelation = "S:SW:W:NW:N:NE:E:SE".parse().unwrap();
        assert_eq!(compute_cdr(&pel, &aeg), surround);
    }

    #[test]
    fn scenario_is_well_formed() {
        let regions = scenario();
        assert_eq!(regions.len(), 11);
        for r in &regions {
            assert!(r.region.area() > 0.0, "{}", r.name);
            for p in r.region.polygons() {
                assert!(p.is_simple(), "{}", r.name);
            }
        }
        // Names are unique.
        let mut names: Vec<_> = regions.iter().map(|r| r.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11);
        // Alliance colours match the paper.
        assert_eq!(Alliance::Athenean.color(), "blue");
        assert_eq!(Alliance::Spartan.color(), "red");
        assert_eq!(Alliance::ProSpartan.color(), "black");
    }

    #[test]
    fn macedonia_is_north_of_attica() {
        let mac = region("Macedonia").unwrap().region;
        let att = region("Attica").unwrap().region;
        let r = compute_cdr(&mac, &att);
        // Macedonia spans the whole north: N plus NW/NE flanks.
        assert!(r.contains(Tile::N), "{r}");
        assert!(!r.contains(Tile::S) && !r.contains(Tile::B), "{r}");
    }
}
