//! Composite-region generators (class `REG*`).
//!
//! The paper motivates `REG*` with geographic entities "made up of
//! separations (islands, exclaves, external territories) and holes
//! (enclaves)". These generators produce such regions with controlled
//! polygon and edge counts, for property tests and benchmarks.

use crate::polygons::star_polygon;
use crate::rng::SplitMix64;
use cardir_geometry::{Point, Polygon, Region};

/// Shape of a generated composite region.
#[derive(Debug, Clone, Copy)]
pub struct RegionSpec {
    /// Number of member polygons (islands).
    pub polygons: usize,
    /// Vertices per polygon.
    pub vertices_per_polygon: usize,
    /// Centre of the whole archipelago.
    pub center: Point,
    /// Distance between island centres (grid pitch).
    pub spread: f64,
}

impl Default for RegionSpec {
    fn default() -> Self {
        RegionSpec {
            polygons: 1,
            vertices_per_polygon: 16,
            center: Point::ORIGIN,
            spread: 10.0,
        }
    }
}

/// Generates a composite region: `spec.polygons` star polygons laid out on
/// a grid around `spec.center`, far enough apart that interiors stay
/// disjoint (the `REG*` representation invariant).
pub fn archipelago(rng: &mut SplitMix64, spec: RegionSpec) -> Region {
    assert!(spec.polygons >= 1);
    let cols = (spec.polygons as f64).sqrt().ceil() as usize;
    let r_max = spec.spread * 0.45; // < spread/2 keeps neighbours disjoint
    let r_min = r_max * 0.4;
    let polygons = (0..spec.polygons).map(|i| {
        let col = (i % cols) as f64;
        let row = (i / cols) as f64;
        let c = Point::new(
            spec.center.x + col * spec.spread,
            spec.center.y + row * spec.spread,
        );
        star_polygon(rng, c, r_min, r_max, spec.vertices_per_polygon)
    });
    Region::new(polygons).expect("archipelago specs have ≥ 1 polygon")
}

/// Generates a square "frame" region (a region with a hole) centred at
/// `center`: outer half-width `outer`, hole half-width `inner`, decomposed
/// into four simple rectangles as the paper's Fig. 2 decomposes regions
/// with holes.
pub fn frame(center: Point, outer: f64, inner: f64) -> Region {
    assert!(0.0 < inner && inner < outer);
    let (cx, cy) = (center.x, center.y);
    let rect = |x0: f64, y0: f64, x1: f64, y1: f64| {
        Polygon::from_coords([(x0, y0), (x1, y0), (x1, y1), (x0, y1)]).expect("frame rectangles")
    };
    Region::new([
        rect(cx - outer, cy - outer, cx + outer, cy - inner), // south strip
        rect(cx - outer, cy + inner, cx + outer, cy + outer), // north strip
        rect(cx - outer, cy - inner, cx - inner, cy + inner), // west block
        rect(cx + inner, cy - inner, cx + outer, cy + inner), // east block
    ])
    .expect("frames are non-empty")
}

/// Generates a random primary/reference region pair whose bounding boxes
/// overlap, so the relation computation exercises edge division.
///
/// `edges` is the *total* edge budget for the primary region; the
/// reference region is a star polygon of 16 edges. Returns
/// `(primary, reference)`.
pub fn overlapping_pair(rng: &mut SplitMix64, edges: usize) -> (Region, Region) {
    let reference = Region::single(star_polygon(rng, Point::ORIGIN, 4.0, 8.0, 16));
    // Place the primary near the reference so its edges straddle the grid
    // lines of mbb(reference).
    let offset = Point::new(rng.random_range(-6.0..6.0), rng.random_range(-6.0..6.0));
    let n = edges.max(3);
    let primary = Region::single(star_polygon(rng, offset, 3.0, 9.0, n));
    (primary, reference)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archipelago_counts() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let spec = RegionSpec { polygons: 5, vertices_per_polygon: 12, ..RegionSpec::default() };
        let r = archipelago(&mut rng, spec);
        assert_eq!(r.polygon_count(), 5);
        assert_eq!(r.edge_count(), 60);
        for p in r.polygons() {
            assert!(p.is_simple());
        }
    }

    #[test]
    fn archipelago_islands_are_disjoint() {
        let mut rng = SplitMix64::seed_from_u64(4);
        let spec = RegionSpec { polygons: 9, vertices_per_polygon: 10, ..RegionSpec::default() };
        let r = archipelago(&mut rng, spec);
        let boxes: Vec<_> = r.polygons().iter().map(|p| p.bounding_box()).collect();
        for i in 0..boxes.len() {
            for j in (i + 1)..boxes.len() {
                // Bounding boxes may touch but island interiors must not
                // overlap; star radii < spread/2 guarantee box disjointness.
                assert!(
                    !boxes[i].intersects(boxes[j]) || boxes[i].intersection(boxes[j]).unwrap().area() == 0.0,
                    "islands {i} and {j} overlap"
                );
            }
        }
    }

    #[test]
    fn frame_has_a_real_hole() {
        let f = frame(Point::new(2.0, 3.0), 4.0, 1.0);
        assert_eq!(f.polygon_count(), 4);
        assert!((f.area() - (64.0 - 4.0)).abs() < 1e-12);
        assert!(!f.contains(Point::new(2.0, 3.0))); // the hole
        assert!(f.contains(Point::new(2.0, 6.0))); // the north strip
    }

    #[test]
    fn overlapping_pair_has_requested_edges() {
        let mut rng = SplitMix64::seed_from_u64(5);
        let (a, b) = overlapping_pair(&mut rng, 128);
        assert_eq!(a.edge_count(), 128);
        assert_eq!(b.edge_count(), 16);
        // The pair must be computable without panicking.
        let _ = cardir_core::compute_cdr(&a, &b);
    }
}
