//! Workload generators for the EDBT 2004 reproduction.
//!
//! Provides every input the test suites, examples and benchmarks consume:
//!
//! * [`paper`] — the exact geometries behind the paper's worked examples
//!   (Fig. 1, Fig. 3, Fig. 4 / Examples 1–3);
//! * [`polygons`] — random simple polygons with controlled edge counts
//!   (star polygons) and adversarial comb shapes;
//! * [`regions`] — composite `REG*` regions: archipelagos, frames with
//!   holes, overlapping primary/reference pairs;
//! * [`maps`] — synthetic annotated maps for query-evaluation workloads;
//! * [`greece`] — the reconstructed Fig. 11 Ancient-Greece scenario;
//! * [`sweep`] — the parameter grids of the scaling experiments;
//! * [`rng`] — the vendored [`SplitMix64`] generator every random
//!   workload is driven by.
//!
//! All generators take an explicit `&mut SplitMix64`, so every workload
//! is reproducible from a seed — and the workspace builds fully offline,
//! with no external crates.

pub mod greece;
pub mod maps;
pub mod paper;
pub mod polygons;
pub mod regions;
pub mod rng;
pub mod sweep;

pub use greece::{scenario as greece_scenario, Alliance, GreeceRegion};
pub use maps::{random_map, random_region, MapRegion};
pub use polygons::{comb_polygon, star_polygon};
pub use regions::{archipelago, frame, overlapping_pair, RegionSpec};
pub use rng::{RandomRange, SplitMix64};
