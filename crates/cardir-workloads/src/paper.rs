//! The exact geometries behind the paper's worked examples and figures.
//!
//! Coordinates are reconstructions: the paper's figures are drawings, so we
//! choose coordinates that reproduce every *stated* property — the
//! relations of Example 1, the 50 %/50 % percentage matrix of Fig. 1c, and
//! the edge-division counts of Fig. 3 and Example 3. Tests in
//! `cardir-core` and the experiment binaries in `cardir-bench` assert all
//! of these.

use cardir_geometry::{Polygon, Region};

/// The reference region `b` used throughout the figures: a square whose
/// `mbb` is `[0,4] × [0,4]` (lines `m1=0, m2=4, l1=0, l2=4`).
pub fn reference_b() -> Region {
    Region::from_coords([(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)])
        .expect("static geometry")
}

/// Fig. 1b: region `a` with `a S b`.
pub fn fig1_a_south() -> Region {
    Region::from_coords([(1.0, -3.0), (3.0, -3.0), (3.0, -1.0), (1.0, -1.0)])
        .expect("static geometry")
}

/// Fig. 1c: region `c` with `c NE:E b`, 50 % in each tile.
pub fn fig1_c_northeast_east() -> Region {
    Region::from_coords([(5.0, 2.0), (7.0, 2.0), (7.0, 6.0), (5.0, 6.0)])
        .expect("static geometry")
}

/// Fig. 1d: the composite region `d = d1 ∪ … ∪ d8` (disconnected, with a
/// hole) satisfying `d B:S:SW:W:NW:N:E:SE b` — every tile except `NE`.
pub fn fig1_d_composite() -> Region {
    let rect = |x0: f64, y0: f64, x1: f64, y1: f64| {
        Polygon::from_coords([(x0, y0), (x1, y0), (x1, y1), (x0, y1)]).expect("static geometry")
    };
    Region::new([
        rect(1.0, 1.0, 3.0, 3.0),   // d1 in B
        rect(1.0, -3.0, 3.0, -1.0), // d2 in S
        rect(-3.0, -3.0, -1.0, -1.0), // d3 in SW
        rect(-3.0, 1.0, -1.0, 3.0), // d4 in W
        rect(-3.0, 5.0, -1.0, 7.0), // d5 in NW
        rect(1.0, 5.0, 3.0, 7.0),   // d6 in N
        rect(5.0, -3.0, 7.0, -1.0), // d7 in SE
        rect(5.0, 1.0, 7.0, 3.0),   // d8 in E
    ])
    .expect("static geometry")
}

/// Fig. 3b: a quadrangle centred on a corner of `mbb(b)`. Edge division
/// yields 8 edges; clipping yields 4 quadrangles (16 edges).
pub fn fig3b_quadrangle() -> Region {
    Region::from_coords([(-1.0, 3.0), (1.0, 3.0), (1.0, 5.0), (-1.0, 5.0)])
        .expect("static geometry")
}

/// Fig. 3c: the worst case — a triangle covering all nine tiles. Edge
/// division yields 11 edges; clipping yields 9 polygons (~35 edges, "2
/// triangles, 6 quadrangles and 1 pentagon").
pub fn fig3c_triangle() -> Region {
    Region::from_coords([(-6.0, -3.0), (3.0, 10.0), (10.0, -5.0)]).expect("static geometry")
}

/// Examples 2 and 3 (Fig. 4): the quadrangle `(N1 N2 N3 N4)` whose
/// vertices lie in `W, NW, NW, NE` but whose relation is
/// `B:W:NW:N:NE:E`. Edge division produces 9 edges
/// (`N1N2 → 2, N2N3 → 1, N3N4 → 3, N4N1 → 3`).
pub fn example3_quadrangle() -> Region {
    Region::from_coords([(-2.0, 2.0), (-3.0, 5.0), (-1.0, 6.0), (5.0, 4.0)])
        .expect("static geometry")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardir_core::{compute_cdr, compute_cdr_pct, Tile};

    #[test]
    fn example_1_relations_hold() {
        let b = reference_b();
        assert_eq!(compute_cdr(&fig1_a_south(), &b).to_string(), "S");
        assert_eq!(compute_cdr(&fig1_c_northeast_east(), &b).to_string(), "NE:E");
        assert_eq!(
            compute_cdr(&fig1_d_composite(), &b).to_string(),
            "B:S:SW:W:NW:N:E:SE"
        );
    }

    #[test]
    fn fig_1c_percentages_are_half_and_half() {
        let b = reference_b();
        let m = compute_cdr_pct(&fig1_c_northeast_east(), &b);
        assert!((m.get(Tile::NE) - 50.0).abs() < 1e-9);
        assert!((m.get(Tile::E) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn shapes_are_valid() {
        for r in [
            reference_b(),
            fig1_a_south(),
            fig1_c_northeast_east(),
            fig1_d_composite(),
            fig3b_quadrangle(),
            fig3c_triangle(),
            example3_quadrangle(),
        ] {
            assert!(r.area() > 0.0);
            for p in r.polygons() {
                assert!(p.is_simple());
            }
        }
    }
}
