//! Fault-injection checks: seeded failpoint arming during differential
//! runs. The properties are the robustness contract of the stack —
//!
//! * however many pairs a fault kills, the accounting must close
//!   (`succeeded + failed + skipped == total`),
//! * every *surviving* pair must be bit-identical to the fault-free
//!   baseline,
//! * after the faults are disarmed, a clean run must be fully `Complete`
//!   and bit-identical again (no poisoned state left behind),
//! * a torn or killed configuration write must leave a loadable file on
//!   disk, recovering from the `.bak` generation when needed.
//!
//! Failpoints are process-global, so these checks must not run
//! concurrently with other failpoint users; the fuzz CLI and the smoke
//! tests serialize them.

use crate::checks::Failure;
use cardir_cardirect::xml::{backup_path, load_config, save_xml_atomic, temp_path, LoadSource};
use cardir_cardirect::Configuration;
use cardir_engine::{BatchEngine, EngineMode, PairOutcome, RegionCache, RunPolicy};
use cardir_faults::{sites, FaultAction, Trigger};
use cardir_geometry::Region;
use std::path::PathBuf;

fn fail(check: &'static str, detail: String) -> Option<Failure> {
    Some(Failure { check, detail })
}

/// Compares one surviving engine pair against the fault-free baseline.
fn survivor_matches(
    got: &cardir_engine::PairRelation,
    want: &cardir_engine::PairRelation,
) -> bool {
    got.primary == want.primary
        && got.reference == want.reference
        && got.relation == want.relation
        && got.percentages == want.percentages
}

/// Seeded fault sweep over the batch engine: arms `engine.pair.compute`
/// with a probabilistic panic (and, second pass, an injected error with
/// retries), and checks accounting plus bit-identical survivors at
/// several thread counts.
pub fn check_engine_faults(regions: &[Region], seed: u64) -> Option<Failure> {
    if regions.len() < 2 {
        return None;
    }
    cardir_faults::disarm_all();
    let cache = RegionCache::build(regions);
    let n = regions.len();
    let total = n * (n - 1);

    // Fault-free baseline, default policy.
    let baseline = BatchEngine::new()
        .with_mode(EngineMode::Quantitative)
        .compute_all(&cache);

    let scenarios: [(&str, FaultAction, u32); 2] = [
        ("faults-engine-panic", FaultAction::Panic("injected".into()), 0),
        ("faults-engine-error", FaultAction::Error("injected".into()), 1),
    ];
    for (check, action, retries) in scenarios {
        for threads in [1usize, 2, 4] {
            let guard = cardir_faults::arm(
                sites::ENGINE_PAIR_COMPUTE,
                action.clone(),
                // Roughly one pair in four, re-rolled per hit from the
                // run seed, so every iteration exercises a different
                // failure pattern.
                Trigger::Probability { num: 1, den: 4, seed: seed ^ threads as u64 },
            );
            let outcome = cardir_faults::with_silent_panics(|| {
                BatchEngine::new()
                    .with_mode(EngineMode::Quantitative)
                    .with_threads(threads)
                    .run_all(&cache, &RunPolicy::default().with_retries(retries))
            });
            drop(guard);

            if outcome.succeeded + outcome.failed + outcome.skipped != total {
                return fail(
                    check,
                    format!(
                        "threads={threads}: accounting broken: {} + {} + {} != {total}",
                        outcome.succeeded, outcome.failed, outcome.skipped
                    ),
                );
            }
            if outcome.skipped != 0 {
                return fail(
                    check,
                    format!("threads={threads}: {} pairs skipped with no deadline/cancel", outcome.skipped),
                );
            }
            if outcome.pairs.len() != total {
                return fail(
                    check,
                    format!("threads={threads}: {} outcome slots for {total} pairs", outcome.pairs.len()),
                );
            }
            for (k, (pair, want)) in outcome.pairs.iter().zip(&baseline.pairs).enumerate() {
                match pair {
                    PairOutcome::Ok(pr) => {
                        if !survivor_matches(pr, want) {
                            return fail(
                                check,
                                format!(
                                    "threads={threads} pair {k}: survivor diverged: \
                                     engine ({}, {}) {} vs baseline ({}, {}) {}",
                                    pr.primary, pr.reference, pr.relation,
                                    want.primary, want.reference, want.relation
                                ),
                            );
                        }
                    }
                    PairOutcome::Failed(e) => {
                        if (e.primary, e.reference) != (want.primary, want.reference) {
                            return fail(
                                check,
                                format!(
                                    "threads={threads} pair {k}: failure attributed to \
                                     ({}, {}), slot belongs to ({}, {})",
                                    e.primary, e.reference, want.primary, want.reference
                                ),
                            );
                        }
                    }
                    PairOutcome::Skipped { .. } => unreachable!("skipped == 0 was checked"),
                }
            }
        }
    }

    // A clean run after disarming must be fully complete and
    // bit-identical — injected faults must leave no residue.
    let clean = BatchEngine::new()
        .with_mode(EngineMode::Quantitative)
        .with_threads(2)
        .run_all(&cache, &RunPolicy::default());
    if !clean.is_complete() || clean.failed != 0 {
        return fail(
            "faults-engine-residue",
            format!("clean run after disarm: status {:?}, {} failed", clean.status, clean.failed),
        );
    }
    for (pair, want) in clean.pairs.iter().zip(&baseline.pairs) {
        match pair {
            PairOutcome::Ok(pr) if survivor_matches(pr, want) => {}
            other => {
                return fail(
                    "faults-engine-residue",
                    format!("clean run diverged from baseline at {other:?}"),
                )
            }
        }
    }
    None
}

/// Scratch file for one persistence check, unique per process and seed.
fn scratch_path(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("cardir-fuzz-faults-{}-{seed}.xml", std::process::id()))
}

fn cleanup(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(backup_path(path));
    let _ = std::fs::remove_file(temp_path(path));
}

/// Seeded torn-write / recovery check on the persistence layer: a save
/// killed mid-stream must leave the previous generation loadable, and a
/// primary corrupted in place must recover from the `.bak` generation.
pub fn check_persistence_faults(regions: &[Region], seed: u64) -> Option<Failure> {
    if regions.is_empty() {
        return None;
    }
    cardir_faults::disarm_all();
    let mut config = Configuration::new("fault fuzz v1", "fuzz.png");
    // A handful of regions is plenty; persistence cost is linear.
    for (i, r) in regions.iter().take(4).enumerate() {
        if let Err(e) = config.add_region(format!("r{i}"), format!("R{i}"), "red", r.clone()) {
            return fail("faults-persist-build", format!("add_region r{i}: {e}"));
        }
    }
    config.compute_all_relations();
    let path = scratch_path(seed);
    cleanup(&path);

    let result = (|| {
        if let Err(e) = save_xml_atomic(&config, &path) {
            return fail("faults-persist-save", format!("clean save failed: {e}"));
        }

        // Tear the next save mid-stream at a seed-derived byte offset.
        let torn_at = (seed % 200) as usize + 1;
        let guard = cardir_faults::arm(
            sites::XML_WRITE_DATA,
            FaultAction::TornWrite(torn_at),
            Trigger::Times(1),
        );
        let mut v2 = config.clone();
        v2.name = "fault fuzz v2".to_string();
        let torn = save_xml_atomic(&v2, &path);
        drop(guard);
        if torn.is_ok() {
            return fail("faults-persist-torn", "torn write reported success".to_string());
        }
        match load_config(&path) {
            Ok(loaded) => {
                if loaded.config.name != "fault fuzz v1" {
                    return fail(
                        "faults-persist-torn",
                        format!("after torn save, loaded generation {:?}", loaded.config.name),
                    );
                }
            }
            Err(e) => {
                return fail(
                    "faults-persist-torn",
                    format!("configuration unloadable after torn save: {e}"),
                )
            }
        }

        // Now a clean v2 save, then corrupt the primary in place — the
        // `.bak` generation (v1) must satisfy the load.
        if let Err(e) = save_xml_atomic(&v2, &path) {
            return fail("faults-persist-save", format!("v2 save failed: {e}"));
        }
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => return fail("faults-persist-recover", format!("read back failed: {e}")),
        };
        let cut = (seed % text.len().max(1) as u64) as usize;
        if std::fs::write(&path, &text[..cut]).is_err() {
            return fail("faults-persist-recover", "could not corrupt the primary".to_string());
        }
        match load_config(&path) {
            // A short truncation can leave a still-valid document (the
            // tail may be trailing whitespace), in which case the primary
            // (v2) wins; otherwise the `.bak` generation (v1) must.
            Ok(loaded) => {
                let want = match loaded.source {
                    LoadSource::Primary => "fault fuzz v2",
                    LoadSource::Backup => "fault fuzz v1",
                };
                if loaded.config.name != want {
                    return fail(
                        "faults-persist-recover",
                        format!(
                            "{:?} recovery produced generation {:?}, expected {want:?}",
                            loaded.source, loaded.config.name
                        ),
                    );
                }
                None
            }
            Err(e) => fail(
                "faults-persist-recover",
                format!("no generation loadable after corruption: {e}"),
            ),
        }
    })();
    cleanup(&path);
    result
}
