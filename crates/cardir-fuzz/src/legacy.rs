//! Frozen copies of the tuned-epsilon predicates that
//! `cardir-geometry` shipped before the robust-predicate rewrite.
//!
//! These are **differential references, not production code**: the ulp
//! checks run them next to the exact predicates on geometry with
//! constructed ground truth, demonstrating the failure class that
//! motivated the rewrite (a tolerance band accepts points that are
//! provably off a segment, and interpolated ray-cast crossings can
//! double-count a shared vertex). Keep them bug-for-bug identical to the
//! retired originals; fixing them would erase the evidence the pinned
//! regression tests rely on.

use cardir_geometry::{Point, Polygon, Segment};

/// The retired `Segment::contains_point(p, eps)`: distance-to-carrier
/// test against a tolerance scaled by the segment length, then a
/// parameter-interval test widened by the same tolerance.
pub fn segment_contains_point(s: Segment, p: Point, eps: f64) -> bool {
    let d = s.direction();
    let ap = p - s.a;
    let len = d.norm();
    if len == 0.0 {
        return ap.norm() <= eps;
    }
    if d.cross(ap).abs() > eps * len {
        return false;
    }
    let t = ap.dot(d);
    (-eps * len..=d.norm_sq() + eps * len).contains(&t)
}

/// The tolerance the retired `Polygon::on_boundary` derived from the
/// polygon's extent.
pub fn boundary_eps(poly: &Polygon) -> f64 {
    let bb = poly.bounding_box();
    1e-12 * bb.width().max(bb.height())
}

/// The retired `Polygon::on_boundary`: every edge tested with the
/// extent-scaled tolerance.
pub fn on_boundary(poly: &Polygon, p: Point) -> bool {
    let eps = boundary_eps(poly);
    poly.edges().any(|e| segment_contains_point(e, p, eps))
}

/// The retired interior parity test: crossings located by *interpolating*
/// the intersection abscissa `x_int` in floating point, so the two edges
/// meeting at a shared vertex on the query row can round their crossings
/// to different sides of `p` and flip parity twice (or zero times).
pub fn contains_interior_crossing(poly: &Polygon, p: Point) -> bool {
    let vs = poly.vertices();
    let mut inside = false;
    let n = vs.len();
    for i in 0..n {
        let a = vs[i];
        let b = vs[(i + 1) % n];
        if (a.y > p.y) != (b.y > p.y) {
            let x_int = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y);
            if p.x < x_int {
                inside = !inside;
            }
        }
    }
    inside
}

/// The retired `Polygon::contains`: tolerance-band boundary test, then
/// interpolated parity.
pub fn contains(poly: &Polygon, p: Point) -> bool {
    on_boundary(poly, p) || contains_interior_crossing(poly, p)
}
