//! The differential checks: every one compares two independent
//! computations of the same fact and reports any disagreement.

use cardir_cardirect::{evaluate, from_xml, parse_query, to_xml, Configuration};
use cardir_core::{
    clipping_cdr, compute_cdr, compute_cdr_with_mbb, tile_areas, tile_areas_with_mbb,
    try_compute_cdr_with_mbb, ALL_TILES,
};
use cardir_engine::{BatchEngine, EngineMode, RegionCache};
use cardir_geometry::{to_wkt, Region};

/// One failed check.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Stable check name (`cdr-vs-clipping`, `engine-vs-naive`, …).
    pub check: &'static str,
    /// Human-readable description of the disagreement.
    pub detail: String,
}

fn fail(check: &'static str, detail: String) -> Option<Failure> {
    Some(Failure { check, detail })
}

/// Absolute tolerance for area comparisons between the linear algorithm
/// and the clipping baseline. Scales with the coordinate magnitude of
/// both operands (round-off in either algorithm is proportional to the
/// squared magnitude), so the same generator runs unchanged at `2^±40`.
fn area_tolerance(a: &Region, b: &Region) -> f64 {
    1e-9 * (a.area() + a.mbb().area() + b.mbb().area()).max(f64::MIN_POSITIVE)
}

/// Checks one ordered pair: `compute_cdr` vs the clipping baseline,
/// `tile_areas` vs the clipped areas and the region's own area, and the
/// fallible entry point against the infallible one.
pub fn check_pair(a: &Region, b: &Region) -> Option<Failure> {
    let fast = compute_cdr(a, b);
    let clipped = clipping_cdr(a, b);
    if fast != clipped.relation {
        return fail(
            "cdr-vs-clipping",
            format!("compute_cdr = {fast}, clipping baseline = {}", clipped.relation),
        );
    }

    let areas = tile_areas(a, b);
    let tol = area_tolerance(a, b);
    for t in ALL_TILES {
        let fast_area = areas.get(t);
        let clip_area = clipped.areas.get(t);
        if (fast_area - clip_area).abs() > tol {
            return fail(
                "areas-vs-clipping",
                format!("tile {t}: tile_areas = {fast_area}, clipped = {clip_area}, tol = {tol}"),
            );
        }
    }
    if (areas.total() - a.area()).abs() > tol {
        return fail(
            "areas-vs-total",
            format!("tile areas sum to {}, region area is {}, tol = {tol}", areas.total(), a.area()),
        );
    }

    // The fallible entry points must accept every valid reference box and
    // agree exactly with the infallible ones.
    match try_compute_cdr_with_mbb(a, b.mbb()) {
        Ok(r) if r == fast => {}
        Ok(r) => return fail("try-vs-plain", format!("try = {r}, plain = {fast}")),
        Err(e) => return fail("try-vs-plain", format!("rejected a valid mbb: {e}")),
    }

    None
}

/// Checks the batch engine against the naive per-pair loop: every thread
/// count × prefilter setting must reproduce the naive relations and
/// percentage matrices bit for bit, in the same order.
pub fn check_engine(regions: &[Region]) -> Option<Failure> {
    let cache = RegionCache::build(regions);
    let n = regions.len();
    let mut naive = Vec::new();
    for (i, a) in regions.iter().enumerate() {
        for j in 0..n {
            if i != j {
                let mbb = cache.mbb(j);
                let rel = compute_cdr_with_mbb(a, mbb);
                let pct = tile_areas_with_mbb(a, mbb).percentages();
                naive.push((i, j, rel, pct));
            }
        }
    }

    for threads in [1usize, 2, 4] {
        for prefilter in [true, false] {
            let result = BatchEngine::new()
                .with_mode(EngineMode::Quantitative)
                .with_threads(threads)
                .with_prefilter(prefilter)
                .compute_all(&cache);
            if result.pairs.len() != naive.len() {
                return fail(
                    "engine-vs-naive",
                    format!(
                        "threads={threads} prefilter={prefilter}: {} pairs, naive has {}",
                        result.pairs.len(),
                        naive.len()
                    ),
                );
            }
            for (pair, (i, j, rel, pct)) in result.pairs.iter().zip(&naive) {
                if pair.primary != *i
                    || pair.reference != *j
                    || pair.relation != *rel
                    || pair.percentages.as_ref() != Some(pct)
                {
                    return fail(
                        "engine-vs-naive",
                        format!(
                            "threads={threads} prefilter={prefilter} pair ({i}, {j}): \
                             engine {} / {:?}, naive {rel} / {pct:?}",
                            pair.relation, pair.percentages
                        ),
                    );
                }
            }
        }
    }
    None
}

/// Attribute value with every character class the escaper must survive.
const HOSTILE_ATTRIBUTE: &str = "line1\nline2\ttab\rret \"quoted\" <tag> & 'apos' Αττική 北海道";

/// Checks the persistence and query layers on a configuration built from
/// the scenario: XML must round-trip bit-exactly (coordinates included)
/// and stay stable under a second serialisation; a query derived from a
/// computed relation must parse, display-round-trip, and evaluate to a
/// binding containing the originating pair.
pub fn check_config(regions: &[Region]) -> Option<Failure> {
    let mut config = Configuration::new("fuzz κόσμος", "fuzz.png");
    for (i, r) in regions.iter().enumerate() {
        if let Err(e) = config.add_region(format!("r{i}"), format!("Περιοχή 北海道 {i}"), "blue", r.clone()) {
            return fail("config-build", format!("add_region r{i}: {e}"));
        }
    }
    if let Err(e) = config.set_attribute("r0", "note", HOSTILE_ATTRIBUTE) {
        return fail("config-build", format!("set_attribute: {e}"));
    }

    let xml = to_xml(&config);
    let back = match from_xml(&xml) {
        Ok(c) => c,
        Err(e) => return fail("xml-round-trip", format!("re-parse failed: {e}")),
    };
    if back.len() != config.len() {
        return fail(
            "xml-round-trip",
            format!("{} regions became {}", config.len(), back.len()),
        );
    }
    for (orig, re) in config.regions().iter().zip(back.regions()) {
        if orig.id != re.id || orig.name != re.name || orig.attributes != re.attributes {
            return fail(
                "xml-round-trip",
                format!("metadata of {:?} changed across the round trip", orig.id),
            );
        }
        if orig.region != re.region {
            return fail(
                "xml-round-trip",
                format!(
                    "geometry of {:?} changed across the round trip:\n  before: {}\n  after:  {}",
                    orig.id,
                    to_wkt(&orig.region),
                    to_wkt(&re.region)
                ),
            );
        }
    }
    let xml2 = to_xml(&back);
    if xml2 != xml {
        return fail("xml-round-trip", "serialisation is not a fixpoint".to_string());
    }

    if regions.len() >= 2 {
        let rel = compute_cdr(&regions[0], &regions[1]);
        let text = format!("{{(x, y) | x {rel} y}}");
        let query = match parse_query(&text) {
            Ok(q) => q,
            Err(e) => return fail("query-round-trip", format!("{text:?} failed to parse: {e}")),
        };
        match parse_query(&query.to_string()) {
            Ok(q) if q == query => {}
            Ok(_) => {
                return fail(
                    "query-round-trip",
                    format!("display form {:?} parses to a different query", query.to_string()),
                )
            }
            Err(e) => {
                return fail(
                    "query-round-trip",
                    format!("display form {:?} failed to parse: {e}", query.to_string()),
                )
            }
        }
        match evaluate(&query, &config) {
            Ok(bindings) => {
                let expected = vec!["r0".to_string(), "r1".to_string()];
                if !bindings.iter().any(|b| b.values == expected) {
                    return fail(
                        "query-eval",
                        format!("evaluating {text:?} lost the originating pair (r0, r1)"),
                    );
                }
            }
            Err(e) => return fail("query-eval", format!("evaluating {text:?} failed: {e}")),
        }
    }

    None
}

/// Shrinks a failing pair by dropping member polygons while the failure
/// persists; returns the smallest reproduction found.
pub fn minimize_pair(a: &Region, b: &Region) -> (Region, Region) {
    fn without(r: &Region, idx: usize) -> Option<Region> {
        if r.polygons().len() <= 1 {
            return None;
        }
        let polys = r
            .polygons()
            .iter()
            .enumerate()
            .filter(|(k, _)| *k != idx)
            .map(|(_, p)| p.clone());
        Region::new(polys).ok()
    }

    let (mut a, mut b) = (a.clone(), b.clone());
    loop {
        let mut reduced = false;
        for idx in 0..a.polygons().len() {
            if let Some(candidate) = without(&a, idx) {
                if check_pair(&candidate, &b).is_some() {
                    a = candidate;
                    reduced = true;
                    break;
                }
            }
        }
        for idx in 0..b.polygons().len() {
            if let Some(candidate) = without(&b, idx) {
                if check_pair(&a, &candidate).is_some() {
                    b = candidate;
                    reduced = true;
                    break;
                }
            }
        }
        if !reduced {
            return (a, b);
        }
    }
}
