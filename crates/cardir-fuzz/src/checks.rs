//! The differential checks: every one compares two independent
//! computations of the same fact and reports any disagreement.

use crate::{gen, legacy};
use cardir_cardirect::{evaluate, from_xml, parse_query, to_xml, Configuration};
use cardir_core::{
    clipping_cdr, compute_cdr, compute_cdr_with_mbb, tile_areas, tile_areas_with_mbb,
    try_compute_cdr_with_mbb, ALL_TILES,
};
use cardir_engine::{
    decided_tile, exact_mask, interacting_pairs, BatchEngine, EngineMode, RegionCache, RunPolicy,
};
use cardir_geometry::robust::{on_segment, orient2d_sign, Sign};
use cardir_geometry::{to_wkt, Point, Polygon, Region, Segment};
use cardir_workloads::SplitMix64;

/// One failed check.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Stable check name (`cdr-vs-clipping`, `engine-vs-naive`, …).
    pub check: &'static str,
    /// Human-readable description of the disagreement.
    pub detail: String,
}

fn fail(check: &'static str, detail: String) -> Option<Failure> {
    Some(Failure { check, detail })
}

/// Absolute tolerance for area comparisons between the linear algorithm
/// and the clipping baseline. Scales with the coordinate magnitude of
/// both operands (round-off in either algorithm is proportional to the
/// squared magnitude), so the same generator runs unchanged at `2^±40`.
fn area_tolerance(a: &Region, b: &Region) -> f64 {
    1e-9 * (a.area() + a.mbb().area() + b.mbb().area()).max(f64::MIN_POSITIVE)
}

/// Checks one ordered pair: `compute_cdr` vs the clipping baseline,
/// `tile_areas` vs the clipped areas and the region's own area, and the
/// fallible entry point against the infallible one.
pub fn check_pair(a: &Region, b: &Region) -> Option<Failure> {
    let fast = compute_cdr(a, b);
    let clipped = clipping_cdr(a, b);
    if fast != clipped.relation {
        return fail(
            "cdr-vs-clipping",
            format!("compute_cdr = {fast}, clipping baseline = {}", clipped.relation),
        );
    }

    let areas = tile_areas(a, b);
    let tol = area_tolerance(a, b);
    for t in ALL_TILES {
        let fast_area = areas.get(t);
        let clip_area = clipped.areas.get(t);
        if (fast_area - clip_area).abs() > tol {
            return fail(
                "areas-vs-clipping",
                format!("tile {t}: tile_areas = {fast_area}, clipped = {clip_area}, tol = {tol}"),
            );
        }
    }
    if (areas.total() - a.area()).abs() > tol {
        return fail(
            "areas-vs-total",
            format!("tile areas sum to {}, region area is {}, tol = {tol}", areas.total(), a.area()),
        );
    }

    // The fallible entry points must accept every valid reference box and
    // agree exactly with the infallible ones.
    match try_compute_cdr_with_mbb(a, b.mbb()) {
        Ok(r) if r == fast => {}
        Ok(r) => return fail("try-vs-plain", format!("try = {r}, plain = {fast}")),
        Err(e) => return fail("try-vs-plain", format!("rejected a valid mbb: {e}")),
    }

    None
}

/// Checks the batch engine against the naive per-pair loop: every thread
/// count × prefilter setting must reproduce the naive relations and
/// percentage matrices bit for bit, in the same order.
pub fn check_engine(regions: &[Region]) -> Option<Failure> {
    let cache = RegionCache::build(regions);
    let n = regions.len();
    let mut naive = Vec::new();
    for (i, a) in regions.iter().enumerate() {
        for j in 0..n {
            if i != j {
                let mbb = cache.mbb(j);
                let rel = compute_cdr_with_mbb(a, mbb);
                let pct = tile_areas_with_mbb(a, mbb).percentages();
                naive.push((i, j, rel, pct));
            }
        }
    }

    for threads in [1usize, 2, 4] {
        for prefilter in [true, false] {
            let result = BatchEngine::new()
                .with_mode(EngineMode::Quantitative)
                .with_threads(threads)
                .with_prefilter(prefilter)
                .compute_all(&cache);
            if result.pairs.len() != naive.len() {
                return fail(
                    "engine-vs-naive",
                    format!(
                        "threads={threads} prefilter={prefilter}: {} pairs, naive has {}",
                        result.pairs.len(),
                        naive.len()
                    ),
                );
            }
            for (pair, (i, j, rel, pct)) in result.pairs.iter().zip(&naive) {
                if pair.primary != *i
                    || pair.reference != *j
                    || pair.relation != *rel
                    || pair.percentages.as_ref() != Some(pct)
                {
                    return fail(
                        "engine-vs-naive",
                        format!(
                            "threads={threads} prefilter={prefilter} pair ({i}, {j}): \
                             engine {} / {:?}, naive {rel} / {pct:?}",
                            pair.relation, pair.percentages
                        ),
                    );
                }
            }
        }
    }
    None
}

/// Checks the spatial-join path on the scenario:
///
/// 1. **Partition oracle** — the sweep's interacting set equals the set
///    of ordered pairs `decided_tile` cannot decide, and the sweep's
///    contact count equals the R-tree masks' candidate sum.
/// 2. **Mask ground truth** — every pair the join would emit straight
///    from the boxes carries the single-tile relation `compute_cdr`
///    computes from the actual geometry.
/// 3. **Join vs all-pairs** — the materialized join is bit-identical to
///    `run_all` (relations *and* percentage matrices) at every thread
///    count × prefilter setting × mode, with `JoinStats` accounting that
///    closes over the whole pair space.
pub fn check_join(regions: &[Region]) -> Option<Failure> {
    let cache = RegionCache::build(regions);
    let n = regions.len();
    let total = if n < 2 { 0 } else { n * (n - 1) };

    let (interacting, candidates) = interacting_pairs(&cache);
    let mut oracle = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j && decided_tile(cache.mbb(i), cache.mbb(j)).is_none() {
                oracle.push((i as u32, j as u32));
            }
        }
    }
    if interacting != oracle {
        return fail(
            "join-partition",
            format!(
                "sweep found {} interacting pairs, the decided_tile oracle {}: \
                 sweep {interacting:?}\n oracle {oracle:?}",
                interacting.len(),
                oracle.len()
            ),
        );
    }
    let rtree: usize = (0..n).map(|j| exact_mask(&cache, j).candidates()).sum();
    if candidates != rtree {
        return fail(
            "join-partition",
            format!("sweep contact count {candidates} != r-tree candidate sum {rtree}"),
        );
    }

    // The relation the mask would emit for each decided pair, vs the
    // full geometric computation — the ground truth behind emitting
    // `N·(N−1) − K` relations without ever touching an edge.
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if let Some(tile) = decided_tile(cache.mbb(i), cache.mbb(j)) {
                let truth = compute_cdr(&regions[i], &regions[j]);
                let emitted = cardir_core::CardinalRelation::single(tile);
                if emitted != truth {
                    return fail(
                        "join-mask-vs-cdr",
                        format!(
                            "pair ({i}, {j}): boxes decide {emitted}, compute_cdr says {truth}"
                        ),
                    );
                }
            }
        }
    }

    // Independent quantitative ground truth: the naive per-pair
    // percentage matrices, computed straight from the geometry. Both
    // enumeration strategies below run the same fused SoA kernel, so an
    // engine-vs-engine comparison alone would let a shared kernel bug
    // cancel out; every quantitative run must also reproduce these bit
    // for bit.
    let mut naive_pct = vec![None; n * n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                naive_pct[i * n + j] =
                    Some(tile_areas_with_mbb(&regions[i], cache.mbb(j)).percentages());
            }
        }
    }

    for mode in [EngineMode::Qualitative, EngineMode::Quantitative] {
        for threads in [1usize, 2] {
            for prefilter in [true, false] {
                let label = format!("{mode:?} threads={threads} prefilter={prefilter}");
                let engine = BatchEngine::new()
                    .with_mode(mode)
                    .with_threads(threads)
                    .with_prefilter(prefilter);
                // Same engine configuration, enumeration strategy only:
                // `run_all` here takes the default all-pairs path.
                let baseline = engine.run_all(&cache, &RunPolicy::default());
                let joined = engine.run_join(&cache, &RunPolicy::default());
                let stats = joined.join;
                if stats.mask_emitted + stats.exact_pairs != total
                    || joined.succeeded + joined.failed + joined.skipped != total
                    || (prefilter && stats.exact_pairs != interacting.len())
                    || (!prefilter && stats.mask_emitted != 0)
                {
                    return fail(
                        "join-accounting",
                        format!(
                            "{label}: {stats:?} does not close over {total} pairs \
                             ({} interacting; {} + {} + {})",
                            interacting.len(),
                            joined.succeeded,
                            joined.failed,
                            joined.skipped
                        ),
                    );
                }
                let out = joined.materialize(&cache);
                if out.pairs.len() != baseline.pairs.len() {
                    return fail(
                        "join-vs-allpairs",
                        format!(
                            "{label}: {} materialized pairs, all-pairs has {}",
                            out.pairs.len(),
                            baseline.pairs.len()
                        ),
                    );
                }
                for (got, want) in out.pairs.iter().zip(&baseline.pairs) {
                    if got != want {
                        return fail(
                            "join-vs-allpairs",
                            format!("{label}: join {got:?}, all-pairs {want:?}"),
                        );
                    }
                }
                if matches!(mode, EngineMode::Quantitative) {
                    for got in out.pairs.iter().filter_map(|o| o.ok()) {
                        let want = naive_pct[got.primary * n + got.reference].as_ref();
                        if got.percentages.as_ref() != want {
                            return fail(
                                "join-pct-vs-naive",
                                format!(
                                    "{label} pair ({}, {}): materialized {:?}, naive {want:?}",
                                    got.primary, got.reference, got.percentages
                                ),
                            );
                        }
                    }
                }
            }
        }
    }
    None
}

/// Attribute value with every character class the escaper must survive.
const HOSTILE_ATTRIBUTE: &str = "line1\nline2\ttab\rret \"quoted\" <tag> & 'apos' Αττική 北海道";

/// Checks the persistence and query layers on a configuration built from
/// the scenario: XML must round-trip bit-exactly (coordinates included)
/// and stay stable under a second serialisation; a query derived from a
/// computed relation must parse, display-round-trip, and evaluate to a
/// binding containing the originating pair.
pub fn check_config(regions: &[Region]) -> Option<Failure> {
    let mut config = Configuration::new("fuzz κόσμος", "fuzz.png");
    for (i, r) in regions.iter().enumerate() {
        if let Err(e) = config.add_region(format!("r{i}"), format!("Περιοχή 北海道 {i}"), "blue", r.clone()) {
            return fail("config-build", format!("add_region r{i}: {e}"));
        }
    }
    if let Err(e) = config.set_attribute("r0", "note", HOSTILE_ATTRIBUTE) {
        return fail("config-build", format!("set_attribute: {e}"));
    }

    let xml = to_xml(&config);
    let back = match from_xml(&xml) {
        Ok(c) => c,
        Err(e) => return fail("xml-round-trip", format!("re-parse failed: {e}")),
    };
    if back.len() != config.len() {
        return fail(
            "xml-round-trip",
            format!("{} regions became {}", config.len(), back.len()),
        );
    }
    for (orig, re) in config.regions().iter().zip(back.regions()) {
        if orig.id != re.id || orig.name != re.name || orig.attributes != re.attributes {
            return fail(
                "xml-round-trip",
                format!("metadata of {:?} changed across the round trip", orig.id),
            );
        }
        if orig.region != re.region {
            return fail(
                "xml-round-trip",
                format!(
                    "geometry of {:?} changed across the round trip:\n  before: {}\n  after:  {}",
                    orig.id,
                    to_wkt(&orig.region),
                    to_wkt(&re.region)
                ),
            );
        }
    }
    let xml2 = to_xml(&back);
    if xml2 != xml {
        return fail("xml-round-trip", "serialisation is not a fixpoint".to_string());
    }

    if regions.len() >= 2 {
        let rel = compute_cdr(&regions[0], &regions[1]);
        let text = format!("{{(x, y) | x {rel} y}}");
        let query = match parse_query(&text) {
            Ok(q) => q,
            Err(e) => return fail("query-round-trip", format!("{text:?} failed to parse: {e}")),
        };
        match parse_query(&query.to_string()) {
            Ok(q) if q == query => {}
            Ok(_) => {
                return fail(
                    "query-round-trip",
                    format!("display form {:?} parses to a different query", query.to_string()),
                )
            }
            Err(e) => {
                return fail(
                    "query-round-trip",
                    format!("display form {:?} failed to parse: {e}", query.to_string()),
                )
            }
        }
        match evaluate(&query, &config) {
            Ok(bindings) => {
                let expected = vec!["r0".to_string(), "r1".to_string()];
                if !bindings.iter().any(|b| b.values == expected) {
                    return fail(
                        "query-eval",
                        format!("evaluating {text:?} lost the originating pair (r0, r1)"),
                    );
                }
            }
            Err(e) => return fail("query-eval", format!("evaluating {text:?} failed: {e}")),
        }
    }

    None
}

/// Outcome of the predicate-level ulp audit for one seed.
#[derive(Debug, Clone, Copy, Default)]
pub struct UlpAudit {
    /// Ground-truth cases evaluated.
    pub cases: u64,
    /// Cases where the retired epsilon predicates disagree with the
    /// exact ones — the bug class the robust rewrite removed.
    /// Informational: only an *exact-path* error is a failure.
    pub legacy_mismatches: u64,
}

/// Exact power-of-two scales the audit runs at, covering the magnitudes
/// where the retired tolerances were alternately too tight and too loose.
const AUDIT_SCALES: [i32; 5] = [-40, -20, 0, 20, 40];

/// Predicate-level differential audit: constructs points whose
/// on/off-segment and in/out-of-polygon status is known *by
/// construction* (exact lattice geometry, then 1–4 ulp perpendicular
/// nudges), asserts the exact predicates reproduce the ground truth, and
/// counts where the retired epsilon predicates disagree.
///
/// Ground-truth argument for the nudges: the constructed on-point `p`
/// satisfies `(b − a) × (p − a) = 0` in the reals (every coordinate is
/// an exact multiple of `s/8` with a small numerator, so no rounding
/// occurred anywhere). Stepping one coordinate by `δ ≠ 0` changes that
/// cross product by exactly `±δ·(b − a)` in the other coordinate, which
/// is non-zero whenever the segment is not parallel to the stepped axis
/// — so the nudged point is off the carrier line as a fact of real
/// arithmetic, not a tolerance judgement.
pub fn check_ulp_predicates(seed: u64) -> (UlpAudit, Option<Failure>) {
    let rng = &mut SplitMix64::seed_from_u64(seed ^ 0x9e37_79b9);
    let mut audit = UlpAudit::default();

    for round in 0..12 {
        let s = 2f64.powi(AUDIT_SCALES[rng.random_range(0..AUDIT_SCALES.len())]);

        // --- Segment cases -------------------------------------------------
        let (a, b) = loop {
            let a = Point::new(gen::half(rng) * s, gen::half(rng) * s);
            let b = Point::new(gen::half(rng) * s, gen::half(rng) * s);
            if a != b {
                break (a, b);
            }
        };
        let seg = Segment::new(a, b);
        let t = rng.random_range(0i64..=4) as f64 * 0.25;
        let p = Point::new(a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t);

        audit.cases += 1;
        if !on_segment(a, b, p) || orient2d_sign(a, b, p) != Sign::Zero {
            return (
                audit,
                fail(
                    "ulp-exact-on-segment",
                    format!("round {round}: constructed on-point {p} rejected for {seg}"),
                ),
            );
        }

        // Perpendicular nudge: step an axis the segment is not parallel
        // to (zero coordinates are skipped — stepping 0.0 manufactures a
        // subnormal, outside the predicates' no-underflow domain).
        let step_x = if a.y == b.y {
            false
        } else if a.x == b.x {
            true
        } else {
            rng.random_bool(0.5)
        };
        let k = rng.random_range(1i64..=4);
        let k = if rng.random_bool(0.5) { k } else { -k };
        let coord = if step_x { p.x } else { p.y };
        if coord != 0.0 {
            let stepped = gen::ulp_step(coord, k);
            let delta_sign = if k > 0 { 1.0 } else { -1.0 };
            let (q, expected) = if step_x {
                (Point::new(stepped, p.y), Sign::of(-(b.y - a.y) * delta_sign))
            } else {
                (Point::new(p.x, stepped), Sign::of((b.x - a.x) * delta_sign))
            };
            audit.cases += 1;
            if on_segment(a, b, q) || orient2d_sign(a, b, q) != expected {
                return (
                    audit,
                    fail(
                        "ulp-exact-off-segment",
                        format!(
                            "round {round}: {q} is {k} ulps off {seg} but on_segment = {}, \
                             orient = {:?} (expected {expected:?})",
                            on_segment(a, b, q),
                            orient2d_sign(a, b, q)
                        ),
                    ),
                );
            }
            // The retired predicate judged the same question through a
            // length-scaled tolerance band.
            let eps = 1e-12 * (b - a).norm();
            if legacy::segment_contains_point(seg, q, eps) {
                audit.legacy_mismatches += 1;
            }
        }

        // --- Polygon cases -------------------------------------------------
        let bx = gen::lattice_box(rng);
        let poly = Polygon::from_coords([
            (bx[0] * s, bx[1] * s),
            (bx[2] * s, bx[1] * s),
            (bx[2] * s, bx[3] * s),
            (bx[0] * s, bx[3] * s),
        ])
        .expect("lattice box");
        let ym = (bx[1] + bx[3]) / 2.0 * s; // exact: quarter-lattice midpoint
        let on_east = Point::new(bx[2] * s, ym);

        audit.cases += 1;
        if !poly.contains(on_east) || !poly.on_boundary(on_east) {
            return (
                audit,
                fail(
                    "ulp-exact-boundary",
                    format!("round {round}: {on_east} on the east edge of {poly} rejected"),
                ),
            );
        }
        if on_east.x != 0.0 {
            let out = Point::new(gen::ulp_step(on_east.x, rng.random_range(1i64..=4)), ym);
            let inside = Point::new(gen::ulp_step(on_east.x, -rng.random_range(1i64..=4)), ym);
            audit.cases += 2;
            if poly.contains(out) || poly.on_boundary(out) {
                return (
                    audit,
                    fail(
                        "ulp-exact-outside",
                        format!("round {round}: {out} is ulps east of {poly} but contained"),
                    ),
                );
            }
            if !poly.contains(inside) || poly.on_boundary(inside) {
                return (
                    audit,
                    fail(
                        "ulp-exact-inside",
                        format!("round {round}: {inside} is ulps inside {poly} but rejected"),
                    ),
                );
            }
            if legacy::contains(&poly, out) || legacy::on_boundary(&poly, out) {
                audit.legacy_mismatches += 1;
            }
        }

        // --- Shared-vertex parity case ------------------------------------
        // A zig-zag with three vertices on the query row: interpolated
        // ray-casting can round the two crossings incident to a shared
        // vertex to different sides of the query and flip parity twice.
        let zig = Polygon::from_coords(
            [(0.0, 0.0), (8.0, 0.0), (8.0, 2.0), (6.0, 4.0), (4.0, 2.0), (2.0, 4.0), (0.0, 2.0)]
                .map(|(x, y)| (x * s, y * s)),
        )
        .expect("zig-zag lattice polygon");
        for (q, truth) in [
            (Point::new(s, 2.0 * s), true),
            (Point::new(5.0 * s, 2.0 * s), true),
            (Point::new(4.0 * s, 2.0 * s), true), // the shared vertex itself
            (Point::new(-s, 2.0 * s), false),
            (Point::new(9.0 * s, 2.0 * s), false),
        ] {
            audit.cases += 1;
            if zig.contains(q) != truth {
                return (
                    audit,
                    fail(
                        "ulp-exact-parity",
                        format!("round {round}: contains({q}) != {truth} on the zig-zag at scale {s:e}"),
                    ),
                );
            }
            if legacy::contains(&zig, q) != truth {
                audit.legacy_mismatches += 1;
            }
        }
    }
    (audit, None)
}

/// Shrinks a failing pair by dropping member polygons while the failure
/// persists; returns the smallest reproduction found.
pub fn minimize_pair(a: &Region, b: &Region) -> (Region, Region) {
    fn without(r: &Region, idx: usize) -> Option<Region> {
        if r.polygons().len() <= 1 {
            return None;
        }
        let polys = r
            .polygons()
            .iter()
            .enumerate()
            .filter(|(k, _)| *k != idx)
            .map(|(_, p)| p.clone());
        Region::new(polys).ok()
    }

    let (mut a, mut b) = (a.clone(), b.clone());
    loop {
        let mut reduced = false;
        for idx in 0..a.polygons().len() {
            if let Some(candidate) = without(&a, idx) {
                if check_pair(&candidate, &b).is_some() {
                    a = candidate;
                    reduced = true;
                    break;
                }
            }
        }
        for idx in 0..b.polygons().len() {
            if let Some(candidate) = without(&b, idx) {
                if check_pair(&a, &candidate).is_some() {
                    b = candidate;
                    reduced = true;
                    break;
                }
            }
        }
        if !reduced {
            return (a, b);
        }
    }
}
