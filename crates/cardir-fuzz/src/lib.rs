//! Deterministic differential fuzzing harness for the cardir workspace.
//!
//! Each iteration derives everything from a single `u64` seed: a
//! [`gen::Scenario`] of adversarial degenerate-geometry regions, then a
//! battery of [`checks`] that cross-validate independent implementations
//! of the same answer —
//!
//! * `compute_cdr` against the polygon-clipping baseline,
//! * `tile_areas` against the clipped shoelace areas (and the region's
//!   own area),
//! * the batch engine (every thread count, prefilter on and off) against
//!   the naive per-pair loop, bit for bit,
//! * the spatial join (sweep partition, mask-emitted relations, the
//!   materialized outcome) against `decided_tile`, `compute_cdr`, and
//!   the all-pairs engine,
//! * XML and query round-trips on a configuration built from the
//!   scenario.
//!
//! A failing check is reported as a [`Divergence`] carrying the exact
//! seed (`cargo run -p cardir-fuzz -- --seed N` replays it) and a
//! polygon-minimized reproduction. Panics anywhere in the checked stack
//! are caught and reported the same way — the stack under test is
//! supposed to be panic-free on valid input.

pub mod checks;
pub mod edits;
pub mod faults;
pub mod gen;
pub mod legacy;

use cardir_geometry::to_wkt;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One confirmed disagreement (or panic), replayable from its seed.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The exact seed that reproduces this divergence on its own.
    pub seed: u64,
    /// Scenario family the seed generated.
    pub family: &'static str,
    /// Which check failed.
    pub check: String,
    /// Disagreement details, including a minimized reproduction where
    /// one exists.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "divergence [{}] in family {:?} at seed {}", self.check, self.family, self.seed)?;
        for line in self.detail.lines() {
            writeln!(f, "  {line}")?;
        }
        write!(f, "  replay: cargo run -p cardir-fuzz -- --seed {}", self.seed)
    }
}

/// Outcome of a fuzzing run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Iterations executed.
    pub iterations: u64,
    /// Every divergence found, in seed order.
    pub divergences: Vec<Divergence>,
}

/// Runs every check for one seed and returns its divergences.
pub fn run_seed(seed: u64) -> Vec<Divergence> {
    run_scenario(seed, gen::generate(seed))
}

/// Runs the checks for one seed *forced into the ulp-adversarial
/// family*, regardless of what family the seed would normally draw.
/// Used by the CI ulp sweep and the pinned ulp regression tests.
pub fn run_seed_ulp(seed: u64) -> Vec<Divergence> {
    run_scenario(seed, gen::generate_ulp(seed))
}

/// Runs the checks for one seed *forced into the join-clusters family*:
/// heavy MBB overlap clusters anchored to shared grid lines plus far
/// satellites, at `2^±40` a quarter of the time. Used by the CI join
/// sweep and the cross-validation suite.
pub fn run_seed_join(seed: u64) -> Vec<Divergence> {
    run_scenario(seed, gen::generate_join(seed))
}

fn run_scenario(seed: u64, scenario: gen::Scenario) -> Vec<Divergence> {
    let family = scenario.family;
    let regions = &scenario.regions;
    let mut out = Vec::new();

    let mut caught = |name: &'static str, result: std::thread::Result<Option<checks::Failure>>| {
        match result {
            Ok(None) => {}
            Ok(Some(failure)) => out.push(Divergence {
                seed,
                family,
                check: failure.check.to_string(),
                detail: failure.detail,
            }),
            Err(payload) => out.push(Divergence {
                seed,
                family,
                check: format!("panic-{name}"),
                detail: panic_message(payload),
            }),
        }
    };

    for i in 0..regions.len() {
        for j in 0..regions.len() {
            if i == j {
                continue;
            }
            let (a, b) = (&regions[i], &regions[j]);
            let result = catch_unwind(AssertUnwindSafe(|| {
                checks::check_pair(a, b).map(|failure| {
                    let (ma, mb) = checks::minimize_pair(a, b);
                    checks::Failure {
                        check: failure.check,
                        detail: format!(
                            "{}\nminimized primary:   {}\nminimized reference: {}",
                            failure.detail,
                            to_wkt(&ma),
                            to_wkt(&mb)
                        ),
                    }
                })
            }));
            caught("pair", result);
        }
    }

    caught("engine", catch_unwind(AssertUnwindSafe(|| checks::check_engine(regions))));
    caught("join", catch_unwind(AssertUnwindSafe(|| checks::check_join(regions))));
    caught("config", catch_unwind(AssertUnwindSafe(|| checks::check_config(regions))));
    if family == "ulp-adversarial" {
        caught(
            "ulp-predicates",
            catch_unwind(AssertUnwindSafe(|| checks::check_ulp_predicates(seed).1)),
        );
    }
    out
}

/// Runs `iters` iterations starting at `base_seed`; iteration `k` uses
/// seed `base_seed + k`, so any failure replays alone with `--seed`.
pub fn run(base_seed: u64, iters: u64) -> FuzzReport {
    let mut report = FuzzReport { iterations: iters, ..FuzzReport::default() };
    for k in 0..iters {
        report.divergences.extend(run_seed(base_seed.wrapping_add(k)));
    }
    report
}

/// The forced-ulp counterpart of [`run`]: every iteration generates an
/// ulp-adversarial scenario (CI runs this for ≥ 200 seeds).
pub fn run_ulp(base_seed: u64, iters: u64) -> FuzzReport {
    let mut report = FuzzReport { iterations: iters, ..FuzzReport::default() };
    for k in 0..iters {
        report.divergences.extend(run_seed_ulp(base_seed.wrapping_add(k)));
    }
    report
}

/// The forced-join counterpart of [`run`]: every iteration generates a
/// join-clusters scenario (CI runs this for ≥ 200 seeds).
pub fn run_join(base_seed: u64, iters: u64) -> FuzzReport {
    let mut report = FuzzReport { iterations: iters, ..FuzzReport::default() };
    for k in 0..iters {
        report.divergences.extend(run_seed_join(base_seed.wrapping_add(k)));
    }
    report
}

/// Runs the fault-injection checks for one seed.
///
/// Arms process-global failpoints: must not run concurrently with other
/// failpoint users (the CLI and the smoke tests serialize it).
pub fn run_faults_seed(seed: u64) -> Vec<Divergence> {
    let scenario = gen::generate(seed);
    let family = scenario.family;
    let regions = &scenario.regions;
    let mut out = Vec::new();

    let mut caught = |name: &'static str, result: std::thread::Result<Option<checks::Failure>>| {
        match result {
            Ok(None) => {}
            Ok(Some(failure)) => out.push(Divergence {
                seed,
                family,
                check: failure.check.to_string(),
                detail: failure.detail,
            }),
            Err(payload) => out.push(Divergence {
                seed,
                family,
                check: format!("panic-{name}"),
                detail: panic_message(payload),
            }),
        }
    };

    // Panics are an expected part of these checks (injected ones are
    // caught by the engine); a panic escaping to *here* is itself a
    // divergence, and either way the registry must be left disarmed.
    let result = cardir_faults::with_silent_panics(|| {
        catch_unwind(AssertUnwindSafe(|| faults::check_engine_faults(regions, seed)))
    });
    cardir_faults::disarm_all();
    caught("engine-faults", result);

    let result =
        catch_unwind(AssertUnwindSafe(|| faults::check_persistence_faults(regions, seed)));
    cardir_faults::disarm_all();
    caught("persistence-faults", result);
    out
}

/// The `--faults` counterpart of [`run`]: `iters` seeded fault-injection
/// iterations starting at `base_seed`.
pub fn run_faults(base_seed: u64, iters: u64) -> FuzzReport {
    let mut report = FuzzReport { iterations: iters, ..FuzzReport::default() };
    for k in 0..iters {
        report.divergences.extend(run_faults_seed(base_seed.wrapping_add(k)));
    }
    report
}

/// Runs the `edits` checks for one seed: a random edit script through
/// the journaled incremental engine, differentially asserted against a
/// fresh full recompute — clean, then under probabilistic faults with
/// kill-mid-append and kill-mid-compaction crash/replay cycles.
///
/// Arms process-global failpoints: must not run concurrently with other
/// failpoint users (the CLI and the smoke tests serialize it).
pub fn run_seed_edits(seed: u64) -> Vec<Divergence> {
    let family = "edit-scripts";
    let mut out = Vec::new();

    let mut caught = |name: &'static str, result: std::thread::Result<Option<checks::Failure>>| {
        match result {
            Ok(None) => {}
            Ok(Some(failure)) => out.push(Divergence {
                seed,
                family,
                check: failure.check.to_string(),
                detail: failure.detail,
            }),
            Err(payload) => out.push(Divergence {
                seed,
                family,
                check: format!("panic-{name}"),
                detail: panic_message(payload),
            }),
        }
    };

    let result = catch_unwind(AssertUnwindSafe(|| edits::check_edit_script(seed)));
    cardir_faults::disarm_all();
    caught("edit-script", result);

    // Injected kills are panics the check itself catches; one escaping
    // to here is a divergence, and the registry is left disarmed either
    // way.
    let result = cardir_faults::with_silent_panics(|| {
        catch_unwind(AssertUnwindSafe(|| edits::check_edit_faults(seed)))
    });
    cardir_faults::disarm_all();
    caught("edit-faults", result);
    out
}

/// The `--family edits` counterpart of [`run`]: `iters` seeded
/// edit-script iterations starting at `base_seed`.
pub fn run_edits(base_seed: u64, iters: u64) -> FuzzReport {
    let mut report = FuzzReport { iterations: iters, ..FuzzReport::default() };
    for k in 0..iters {
        report.divergences.extend(run_seed_edits(base_seed.wrapping_add(k)));
    }
    report
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The CI smoke contract in miniature: a block of seeded iterations
    /// must produce no divergences and no panics.
    #[test]
    fn seeded_block_is_divergence_free() {
        let report = run(1, 60);
        assert_eq!(report.iterations, 60);
        assert!(
            report.divergences.is_empty(),
            "unexpected divergences:\n{}",
            report
                .divergences
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// Replay of a fuzzer-found bug (seed 57, family `needles` at
    /// `2^-40` scale): `Polygon::contains` floored its boundary
    /// tolerance at an absolute constant, so for micro-scale polygons
    /// the tolerance exceeded the whole polygon and the `B`-tile
    /// centre test fired for a centre nowhere near the region —
    /// `compute_cdr` said `B:SW` while the prefilter, the clipping
    /// baseline, and the area matrix all said plain `SW`.
    #[test]
    fn seed_57_microscale_needle_center_containment() {
        let divergences = run_seed(57);
        assert!(
            divergences.is_empty(),
            "seed 57 regressed:\n{}",
            divergences.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
        );
    }

    /// The CI ulp sweep in miniature: a forced ulp-adversarial block
    /// must be divergence-free — `compute_cdr` through the exact
    /// predicates agrees with the clipping baseline, the engine, and the
    /// area accounting on geometry nudged 1–4 ulps around grid lines.
    /// The CI join sweep in miniature: a forced join-clusters block must
    /// be divergence-free — the sweep partition, the mask-emitted
    /// relations, and the materialized join all agree with their oracles
    /// on clustered, grid-anchored, extreme-magnitude geometry.
    #[test]
    fn join_block_is_divergence_free() {
        let report = run_join(1, 40);
        assert_eq!(report.iterations, 40);
        assert!(
            report.divergences.is_empty(),
            "unexpected divergences:\n{}",
            report
                .divergences
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn ulp_block_is_divergence_free() {
        let report = run_ulp(1, 40);
        assert_eq!(report.iterations, 40);
        assert!(
            report.divergences.is_empty(),
            "unexpected divergences:\n{}",
            report
                .divergences
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// Pinned ulp-audit regressions: on these seeds' constructed
    /// ground-truth cases the exact predicates are right everywhere,
    /// while the retired epsilon predicates demonstrably disagree (their
    /// tolerance bands accept points that are provably off a segment or
    /// outside a polygon). If the second assertion ever starts failing,
    /// `legacy` was "fixed" — which defeats its purpose as differential
    /// evidence.
    #[test]
    fn pinned_seeds_exact_right_where_legacy_epsilon_diverges() {
        for seed in [1u64, 7, 42] {
            let (audit, failure) = checks::check_ulp_predicates(seed);
            assert!(failure.is_none(), "seed {seed}: exact path wrong: {failure:?}");
            assert!(audit.cases >= 50, "seed {seed}: only {} cases", audit.cases);
            assert!(
                audit.legacy_mismatches > 0,
                "seed {seed}: legacy predicates unexpectedly agreed with ground truth everywhere"
            );
        }
    }

    /// The CI edits sweep in miniature: a seeded block of journaled
    /// edit scripts — crash cycles, kills, probabilistic faults — must
    /// be divergence-free.
    #[test]
    fn edits_block_is_divergence_free() {
        let report = run_edits(1, 10);
        assert_eq!(report.iterations, 10);
        assert!(
            report.divergences.is_empty(),
            "unexpected divergences:\n{}",
            report
                .divergences
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn divergence_display_carries_the_replay_seed() {
        let d = Divergence {
            seed: 7,
            family: "needles",
            check: "cdr-vs-clipping".to_string(),
            detail: "compute_cdr = B, clipping baseline = B:N".to_string(),
        };
        let rendered = d.to_string();
        assert!(rendered.contains("--seed 7"));
        assert!(rendered.contains("cdr-vs-clipping"));
        assert!(rendered.contains("needles"));
    }
}
