//! CLI for the differential fuzzer.
//!
//! ```text
//! cargo run -p cardir-fuzz -- --iters 500 --seed 1
//! cargo run -p cardir-fuzz -- --seed 123456   # replay one divergence
//! cargo run -p cardir-fuzz -- --faults --iters 100 --seed 1
//! cargo run -p cardir-fuzz -- --family ulp --iters 200 --seed 1
//! ```
//!
//! `--faults` switches to the fault-injection check family: seeded
//! failpoint arming during differential runs, asserting accounting
//! closure, bit-identical surviving pairs, and clean recovery after torn
//! configuration writes.
//!
//! `--family ulp` (or `ulp-adversarial`) forces every iteration into the
//! ulp-adversarial scenario family: coordinates nudged 1–4 ulps around
//! the reference's grid lines, plus the predicate-level ground-truth
//! audit against the retired epsilon implementations.
//!
//! `--family join` (or `join-clusters`) forces every iteration into the
//! spatial-join family: heavy MBB overlap clusters sharing grid lines
//! with the reference plus strictly separated satellites, at `2^±40`
//! magnitude a quarter of the time — the geometry that stresses the
//! join's partition oracle and its mask-emitted relations.
//!
//! `--family edits` (or `edit-scripts`) drives random edit scripts
//! through the journaled incremental engine: every step is bit-compared
//! against a fresh full recompute, stores are dropped and replayed
//! mid-script, and a second pass arms probabilistic compute/journal
//! faults plus kill-mid-append and kill-mid-compaction crash cycles.
//!
//! Exits non-zero when any divergence (or panic) is found, printing each
//! one with its replay command.

use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: cardir-fuzz [--seed N] [--iters M] [--faults] [--family ulp|join|edits]");
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut seed = 1u64;
    let mut iters = 1u64;
    let mut faults = false;
    let mut family: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = |args: &mut dyn Iterator<Item = String>| {
            args.next().unwrap_or_else(|| usage())
        };
        match arg.as_str() {
            "--seed" => seed = value(&mut args).parse().unwrap_or_else(|_| usage()),
            "--iters" => iters = value(&mut args).parse().unwrap_or_else(|_| usage()),
            "--faults" => faults = true,
            "--family" => family = Some(value(&mut args)),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let report = match (faults, family.as_deref()) {
        (true, None) => cardir_fuzz::run_faults(seed, iters),
        (false, None) => cardir_fuzz::run(seed, iters),
        (false, Some("ulp" | "ulp-adversarial")) => cardir_fuzz::run_ulp(seed, iters),
        (false, Some("join" | "join-clusters")) => cardir_fuzz::run_join(seed, iters),
        (false, Some("edits" | "edit-scripts")) => cardir_fuzz::run_edits(seed, iters),
        _ => usage(),
    };
    for d in &report.divergences {
        eprintln!("{d}\n");
    }
    println!(
        "cardir-fuzz: {} iteration(s) from seed {}: {} divergence(s)",
        report.iterations,
        seed,
        report.divergences.len()
    );
    if report.divergences.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
