//! The `edits` differential family: random edit scripts driven through
//! the journaled incremental engine, cross-checked bit-for-bit against
//! a fresh full recompute — with and without injected faults and
//! simulated process deaths.
//!
//! The contract under test is the incremental/journal robustness story:
//!
//! * after any prefix of an edit script, `IncrementalEngine::materialize`
//!   equals a full `BatchEngine` run over the same live geometry —
//!   relations, percentages, and `via_prefilter` provenance included,
//! * dropping the [`RelationStore`] at any point and reopening replays
//!   to exactly the durable state (and that state also bit-matches a
//!   full recompute of its geometry),
//! * a kill mid-append or mid-compaction (injected panic unwinding
//!   through the IO path, like a process dying there) never loses more
//!   than the in-flight record and never yields garbage,
//! * probabilistic faults on the compute path park pairs as pending,
//!   never as wrong relations; a repair after disarming converges to
//!   the exact fault-free state.
//!
//! Failpoints are process-global, so these checks must not run
//! concurrently with other failpoint users; the fuzz CLI and the smoke
//! tests serialize them.

use crate::checks::Failure;
use cardir_cardirect::{RelationStore, ReplaySource, StoreOptions};
use cardir_engine::{
    BatchEngine, Edit, EngineMode, IncrementalEngine, PairRelation, RegionCache, RunPolicy,
};
use cardir_faults::{sites, FaultAction, Trigger};
use cardir_geometry::{BoundingBox, Point, Region};
use cardir_workloads::{random_map, random_region, SplitMix64};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

fn fail(check: &'static str, detail: String) -> Option<Failure> {
    Some(Failure { check, detail })
}

fn scratch_path(seed: u64, tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "cardir-fuzz-edits-{tag}-{}-{seed}.cdj",
        std::process::id()
    ))
}

fn cleanup(path: &Path) {
    let _ = std::fs::remove_file(path);
    let mut tmp = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    tmp.push(".tmp");
    let _ = std::fs::remove_file(path.with_file_name(tmp));
}

fn extent() -> BoundingBox {
    BoundingBox::new(Point::new(0.0, 0.0), Point::new(400.0, 300.0))
}

/// Seed-derived base map: small enough that a full-recompute oracle per
/// step stays cheap, clustered enough that edits hit interacting pairs.
fn base_regions(seed: u64) -> Vec<Region> {
    let mut rng = SplitMix64::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let n = 3 + (rng.random_range(0..4u64) as usize);
    random_map(&mut rng, n, extent()).into_iter().map(|m| m.region).collect()
}

/// The next seed-derived edit against the current live slot set.
fn draw_edit(rng: &mut SplitMix64, engine: &IncrementalEngine, pool: &mut Vec<Region>) -> Edit {
    let live: Vec<u32> = engine.live_regions().map(|(id, _)| id).collect();
    // random_region consumes the same draw sequence random_map(rng, 1, ..)
    // did, but is decoupled from the map generator's grid internals, so
    // pinned seed scripts survive layout changes there (see the
    // seed-script pin test below).
    let fresh = |pool: &mut Vec<Region>, rng: &mut SplitMix64| {
        pool.pop().unwrap_or_else(|| random_region(rng, extent()).region)
    };
    // Keep at least two regions alive so every script keeps exercising
    // real pair work; bias towards replaces, the incremental sweet spot.
    match rng.random_range(0..6u64) {
        0 if live.len() > 2 => {
            Edit::Remove(live[rng.random_range(0..live.len() as u64) as usize])
        }
        1 => Edit::Insert(fresh(pool, rng)),
        _ => {
            let victim = live[rng.random_range(0..live.len() as u64) as usize];
            Edit::Replace(victim, fresh(pool, rng))
        }
    }
}

/// The oracle: a fresh prefilter-on batch join over the engine's live
/// geometry, materialized to the full ordered-pair list.
fn full_recompute(engine: &IncrementalEngine) -> Result<Vec<PairRelation>, String> {
    let regions: Vec<&Region> = engine.live_regions().map(|(_, r)| r).collect();
    let cache = RegionCache::build(regions);
    let batch = BatchEngine::new().with_mode(engine.mode()).with_threads(1);
    let outcome = batch.run_join(&cache, &RunPolicy::default()).materialize(&cache);
    outcome
        .pairs
        .iter()
        .map(|p| p.ok().cloned().ok_or_else(|| "oracle run failed a pair".to_string()))
        .collect()
}

/// Bit-compares the engine's materialized state against the oracle.
fn diff_vs_full(engine: &IncrementalEngine, context: &str) -> Option<String> {
    let materialized = match engine.materialize() {
        Ok(m) => m,
        Err(e) => return Some(format!("{context}: materialize failed: {e}")),
    };
    let oracle = match full_recompute(engine) {
        Ok(o) => o,
        Err(e) => return Some(format!("{context}: {e}")),
    };
    if materialized.len() != oracle.len() {
        return Some(format!(
            "{context}: {} materialized pairs vs {} from full recompute",
            materialized.len(),
            oracle.len()
        ));
    }
    for (got, want) in materialized.iter().zip(&oracle) {
        if got != want {
            return Some(format!(
                "{context}: pair ({}, {}) diverged:\n  incremental: {} via_prefilter={}\n  \
                 full:        {} via_prefilter={}",
                got.primary, got.reference, got.relation, got.via_prefilter,
                want.relation, want.via_prefilter
            ));
        }
    }
    None
}

fn store_options(seed: u64) -> StoreOptions {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0xabcd_ef01);
    StoreOptions {
        mode: if rng.random_bool(0.5) {
            EngineMode::Quantitative
        } else {
            EngineMode::Qualitative
        },
        threads: 1 + (rng.random_range(0..2u64) as usize),
        // Small threshold so scripts cross the compaction boundary often.
        compact_threshold: 2048,
    }
}

/// Phase A: a clean seeded edit script with periodic drop/reopen crash
/// cycles. Every step must bit-match the full-recompute oracle, and
/// every reopen must replay to exactly the pre-drop state.
pub fn check_edit_script(seed: u64) -> Option<Failure> {
    cardir_faults::disarm_all();
    let path = scratch_path(seed, "clean");
    cleanup(&path);
    let opts = store_options(seed);
    let policy = RunPolicy::default();
    let base = base_regions(seed);
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x5eed_0001);
    let mut pool: Vec<Region> = random_map(&mut rng, 10, extent())
        .into_iter()
        .map(|m| m.region)
        .collect();

    let result = (|| {
        let mut store = RelationStore::open(&path, &base, opts);
        let steps = 4 + (rng.random_range(0..7u64));
        for step in 0..steps {
            let edit = draw_edit(&mut rng, store.engine(), &mut pool);
            if let Err(e) = store.apply(edit.clone(), &policy) {
                return fail("edits-apply", format!("step {step}: edit {edit:?} rejected: {e}"));
            }
            if let Some(diff) = diff_vs_full(store.engine(), &format!("step {step}")) {
                return fail("edits-differential", diff);
            }
            // Crash cycle roughly every third step: drop the store cold
            // and reopen from disk.
            if rng.random_bool(0.33) {
                let before = match store.engine().materialize() {
                    Ok(m) => m,
                    Err(e) => {
                        return fail("edits-replay", format!("step {step}: pre-drop state: {e}"))
                    }
                };
                drop(store);
                store = RelationStore::open(&path, &base, opts);
                match store.replay_report().source {
                    ReplaySource::Journal => {}
                    ref other => {
                        return fail(
                            "edits-replay",
                            format!("step {step}: clean journal replayed as {other:?}"),
                        )
                    }
                }
                let after = match store.engine().materialize() {
                    Ok(m) => m,
                    Err(e) => {
                        return fail("edits-replay", format!("step {step}: post-reopen: {e}"))
                    }
                };
                if before != after {
                    return fail(
                        "edits-replay",
                        format!(
                            "step {step}: replayed state diverged from the dropped state \
                             ({} vs {} pairs or content)",
                            after.len(),
                            before.len()
                        ),
                    );
                }
            }
        }
        None
    })();
    cleanup(&path);
    result
}

/// Phase B: the same scripts under fire — probabilistic faults on the
/// compute path and the journal append path, plus seeded kills
/// mid-append and mid-compaction with full crash/replay cycles.
pub fn check_edit_faults(seed: u64) -> Option<Failure> {
    cardir_faults::disarm_all();
    let path = scratch_path(seed, "faults");
    cleanup(&path);
    let opts = store_options(seed);
    let policy = RunPolicy::default();
    let base = base_regions(seed);
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x5eed_0002);
    let mut pool: Vec<Region> = random_map(&mut rng, 12, extent())
        .into_iter()
        .map(|m| m.region)
        .collect();

    let result = (|| {
        let mut store = RelationStore::open(&path, &base, opts);

        // --- Probabilistic faults on compute + journal-append paths ---
        let compute_guard = cardir_faults::arm(
            sites::ENGINE_PAIR_COMPUTE,
            FaultAction::Error("injected".into()),
            Trigger::Probability { num: 1, den: 4, seed: seed ^ 1 },
        );
        let append_guard = cardir_faults::arm(
            sites::JOURNAL_APPEND,
            if rng.random_bool(0.5) {
                FaultAction::IoError("injected".into())
            } else {
                FaultAction::TornWrite(5 + (seed % 40) as usize)
            },
            Trigger::Probability { num: 1, den: 3, seed: seed ^ 2 },
        );
        for step in 0..4u64 {
            let edit = draw_edit(&mut rng, store.engine(), &mut pool);
            if let Err(e) = store.apply(edit.clone(), &policy) {
                return fail(
                    "edits-faulted-apply",
                    format!("faulted step {step}: edit {edit:?} rejected: {e}"),
                );
            }
            // No oracle here: the compute failpoint is still armed, so a
            // full recompute would fault too. The post-repair differential
            // below asserts the "pending, never wrong" contract once the
            // registry is disarmed.
        }
        drop(compute_guard);
        drop(append_guard);

        // Repair converges to the exact fault-free state.
        let repaired = store.repair(&policy);
        if repaired.still_pending != 0 {
            return fail(
                "edits-repair",
                format!("{} pairs still pending after disarmed repair", repaired.still_pending),
            );
        }
        if let Some(diff) = diff_vs_full(store.engine(), "after repair") {
            return fail("edits-repair", diff);
        }
        // Re-establish durability (appends may have been killed above).
        if let Err(e) = store.sync() {
            return fail("edits-repair", format!("sync after disarm failed: {e}"));
        }

        // --- Kill mid-append: process dies, reopen, replay ---
        let pre_kill = store.engine().materialize().expect("no pending after repair");
        let kill_guard = cardir_faults::arm(
            sites::JOURNAL_APPEND,
            FaultAction::Panic("killed mid-append".into()),
            Trigger::Times(1),
        );
        let edit = draw_edit(&mut rng, store.engine(), &mut pool);
        let killed = cardir_faults::with_silent_panics(|| {
            catch_unwind(AssertUnwindSafe(|| store.apply(edit.clone(), &policy)))
        });
        drop(kill_guard);
        if killed.is_ok() {
            return fail("edits-kill-append", "injected kill did not fire".to_string());
        }
        // "Process death": the poisoned store is abandoned, not synced.
        drop(store);
        let mut store = RelationStore::open(&path, &base, opts);
        match store.replay_report().source {
            ReplaySource::Journal | ReplaySource::TruncatedJournal { .. } => {}
            ref other => {
                return fail(
                    "edits-kill-append",
                    format!("journal unusable after kill mid-append: {other:?}"),
                )
            }
        }
        let after = match store.engine().materialize() {
            Ok(m) => m,
            Err(e) => return fail("edits-kill-append", format!("replayed state: {e}")),
        };
        if after != pre_kill {
            return fail(
                "edits-kill-append",
                format!(
                    "replay after kill mid-append lost more than the in-flight record \
                     ({} vs {} pairs or content)",
                    after.len(),
                    pre_kill.len()
                ),
            );
        }
        if let Some(diff) = diff_vs_full(store.engine(), "after kill mid-append") {
            return fail("edits-kill-append", diff);
        }

        // --- Kill mid-compaction (write or rename, seed-chosen) ---
        let site = if rng.random_bool(0.5) {
            sites::JOURNAL_COMPACT_WRITE
        } else {
            sites::JOURNAL_COMPACT_RENAME
        };
        let kill_guard = cardir_faults::arm(
            site,
            FaultAction::Panic("killed mid-compaction".into()),
            Trigger::Times(1),
        );
        let killed = cardir_faults::with_silent_panics(|| {
            catch_unwind(AssertUnwindSafe(|| store.compact()))
        });
        drop(kill_guard);
        if killed.is_ok() {
            return fail("edits-kill-compact", format!("injected kill at {site} did not fire"));
        }
        drop(store);
        let store = RelationStore::open(&path, &base, opts);
        match store.replay_report().source {
            ReplaySource::Journal | ReplaySource::TruncatedJournal { .. } => {}
            ref other => {
                return fail(
                    "edits-kill-compact",
                    format!("{site}: journal unusable after kill mid-compaction: {other:?}"),
                )
            }
        }
        let after = match store.engine().materialize() {
            Ok(m) => m,
            Err(e) => return fail("edits-kill-compact", format!("{site}: replayed state: {e}")),
        };
        if after != pre_kill {
            return fail(
                "edits-kill-compact",
                format!("{site}: compaction kill changed the durable state"),
            );
        }
        if let Some(diff) = diff_vs_full(store.engine(), "after kill mid-compaction") {
            return fail("edits-kill-compact", diff);
        }
        None
    })();
    cardir_faults::disarm_all();
    cleanup(&path);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Renders a seed's first scripted edits as a stable fingerprint:
    /// edit kind, slot, and the fresh geometry's MBB with f64 Debug
    /// (shortest-roundtrip) precision. An empty pool forces every fresh
    /// region through the single-region generator.
    fn script_fingerprint(seed: u64, steps: usize) -> String {
        use std::fmt::Write as _;
        let base = base_regions(seed);
        let mut engine = IncrementalEngine::bootstrap(
            EngineMode::Qualitative,
            1,
            base,
            &RunPolicy::default(),
        );
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x5eed_0001);
        let mut pool = Vec::new();
        let mut out = String::new();
        for _ in 0..steps {
            let edit = draw_edit(&mut rng, &engine, &mut pool);
            match &edit {
                Edit::Insert(r) => {
                    let m = r.mbb();
                    let _ = writeln!(
                        out,
                        "insert [{:?} {:?} {:?} {:?}]",
                        m.min.x, m.min.y, m.max.x, m.max.y
                    );
                }
                Edit::Remove(id) => {
                    let _ = writeln!(out, "remove {id}");
                }
                Edit::Replace(id, r) => {
                    let m = r.mbb();
                    let _ = writeln!(
                        out,
                        "replace {id} [{:?} {:?} {:?} {:?}]",
                        m.min.x, m.min.y, m.max.x, m.max.y
                    );
                }
            }
            engine.apply(edit).expect("edit applies");
        }
        out
    }

    /// Pins one known seed's edit script bit-for-bit. This is the replay
    /// stability contract of the single-region generator: swapping
    /// `random_map(rng, 1, ..)` for `random_region` must not shift the
    /// RNG stream, and neither may future changes to `random_map`'s grid
    /// layout — only a deliberate, fingerprint-updating change to the
    /// per-cell draw sequence itself may touch this.
    #[test]
    fn seed_3_edit_script_is_pinned() {
        let got = script_fingerprint(3, 6);
        let want = "\
replace 2 [101.53373945880826 88.30713908396274 268.9071706013763 289.0953795156669]
insert [99.5150365920495 47.06583702666052 277.90170379762606 204.98375084926755]
replace 2 [145.02061955086188 36.2084131201979 297.06837589751854 232.22006302378313]
replace 2 [141.24899277022732 21.057109541974697 275.2186841995124 202.09039762131323]
replace 0 [58.716277854984554 65.54778868516483 250.6792211308039 237.90699590244543]
insert [114.7669569005181 74.4080779232087 294.53730427286075 246.70327984585077]
";
        assert_eq!(got, want, "seed-3 edit script shifted:\n{got}");
    }
}
