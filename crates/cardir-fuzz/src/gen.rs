//! Adversarial scenario generation on an exact half-integer lattice.
//!
//! Every coordinate is `k/2` for an integer `k` in `[-128, 128]`,
//! optionally scaled by an exact power of two (`2^±40`). On this lattice
//! every vertex, every MBB grid line, and every edge/grid-line crossing
//! parameter is an exact ratio of exactly-represented doubles, so two
//! algorithms that are mathematically equal stay *bit*-comparable: any
//! disagreement the differential checks see is a genuine divergence, not
//! round-off noise. The lattice also bounds areas away from zero (a
//! lattice triangle has area ≥ 1/8), keeping the clipping baseline's
//! area threshold far from every real tile.
//!
//! The families deliberately concentrate on the degenerate contact cases
//! the paper's algorithms must get right: primaries anchored to the
//! reference's own grid lines (shared edges, touching corners, exact
//! tile fills), needle polygons, rectilinear outlines with collinear
//! consecutive edges lying on grid lines, multi-polygon regions
//! straddling tiles, diagonals passing exactly through grid corners, and
//! all of the above at extreme magnitudes.

use cardir_geometry::{Point, Polygon, Region};
use cardir_workloads::SplitMix64;

/// One generated scenario: a named family plus its regions. The last
/// region is the designated reference of the family's construction, but
/// the checks run over *all* ordered pairs.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Family name, for divergence reports.
    pub family: &'static str,
    /// The generated regions (at least two).
    pub regions: Vec<Region>,
}

/// Half-units: coordinates are `k/2` with `k ∈ [-EXTENT, EXTENT]`.
const EXTENT: i64 = 128;

pub(crate) fn half(rng: &mut SplitMix64) -> f64 {
    rng.random_range(-EXTENT..=EXTENT) as f64 / 2.0
}

/// A lattice coordinate that, half the time, *exactly* reuses one of the
/// reference coordinates in `lines` — the engine of shared-line /
/// touching-corner contact.
fn anchored(rng: &mut SplitMix64, lines: &[f64]) -> f64 {
    if !lines.is_empty() && rng.random_bool(0.5) {
        lines[rng.random_range(0..lines.len())]
    } else {
        half(rng)
    }
}

/// `[x0, y0, x1, y1]` with `x0 < x1`, `y0 < y1`.
pub(crate) fn lattice_box(rng: &mut SplitMix64) -> [f64; 4] {
    loop {
        let (x0, x1) = (half(rng), half(rng));
        let (y0, y1) = (half(rng), half(rng));
        if x0 < x1 && y0 < y1 {
            return [x0, y0, x1, y1];
        }
    }
}

/// A box whose edges are drawn from the anchor sets (terminates almost
/// surely: `anchored` falls back to fresh lattice draws).
fn anchored_box(rng: &mut SplitMix64, xs: &[f64], ys: &[f64]) -> [f64; 4] {
    loop {
        let (x0, x1) = (anchored(rng, xs), anchored(rng, xs));
        let (y0, y1) = (anchored(rng, ys), anchored(rng, ys));
        if x0 < x1 && y0 < y1 {
            return [x0, y0, x1, y1];
        }
    }
}

fn rect_poly(b: [f64; 4]) -> Polygon {
    Polygon::from_coords([(b[0], b[1]), (b[2], b[1]), (b[2], b[3]), (b[0], b[3])])
        .expect("a proper lattice box is a valid polygon")
}

fn rect_region(b: [f64; 4]) -> Region {
    Region::single(rect_poly(b))
}

/// Do the *interiors* of two boxes overlap? (Shared edges and corners
/// are fine — `REG*` only requires disjoint interiors.)
fn interiors_overlap(a: [f64; 4], b: [f64; 4]) -> bool {
    a[0] < b[2] && b[0] < a[2] && a[1] < b[3] && b[1] < a[3]
}

/// A composite region of up to `count` anchored rectangles with pairwise
/// disjoint interiors; boundary contact (shared edges, corners) between
/// the member polygons is allowed and common.
fn multi_rect_region(rng: &mut SplitMix64, count: usize, xs: &[f64], ys: &[f64]) -> Region {
    let mut boxes = vec![anchored_box(rng, xs, ys)];
    for _ in 1..count {
        for _ in 0..8 {
            let c = anchored_box(rng, xs, ys);
            if !boxes.iter().any(|&b| interiors_overlap(b, c)) {
                boxes.push(c);
                break;
            }
        }
    }
    Region::new(boxes.into_iter().map(rect_poly)).expect("at least one box")
}

/// A rectangle outline with extra vertices inserted on its straight
/// edges: consecutive collinear edges, some landing exactly on the
/// reference's grid lines. Exercises the corner-merge and snapping logic
/// of edge division where a vertex sits *on* a crossing.
fn subdivided_rect(b: [f64; 4], xcuts: &[f64], ycuts: &[f64]) -> Polygon {
    let mut xs: Vec<f64> = xcuts.iter().copied().filter(|&x| x > b[0] && x < b[2]).collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup();
    let mut ys: Vec<f64> = ycuts.iter().copied().filter(|&y| y > b[1] && y < b[3]).collect();
    ys.sort_by(f64::total_cmp);
    ys.dedup();

    let mut pts = Vec::new();
    pts.push((b[0], b[1]));
    pts.extend(xs.iter().map(|&x| (x, b[1]))); // south edge, west → east
    pts.push((b[2], b[1]));
    pts.extend(ys.iter().map(|&y| (b[2], y))); // east edge, south → north
    pts.push((b[2], b[3]));
    pts.extend(xs.iter().rev().map(|&x| (x, b[3]))); // north edge, east → west
    pts.push((b[0], b[3]));
    pts.extend(ys.iter().rev().map(|&y| (b[0], y))); // west edge, north → south
    Polygon::from_coords(pts).expect("a subdivided proper box is a valid polygon")
}

/// A needle: a triangle half a lattice unit tall over a long base,
/// optionally pinned exactly onto a reference line.
fn needle_region(rng: &mut SplitMix64, xs: &[f64], ys: &[f64]) -> Region {
    let y = anchored(rng, ys);
    let (x0, x1) = loop {
        let (a, b) = (anchored(rng, xs), anchored(rng, xs));
        if a < b {
            break (a, b);
        }
    };
    let apex_x = anchored(rng, xs).clamp(x0, x1);
    let dir = if rng.random_bool(0.5) { 0.5 } else { -0.5 };
    // Vertical needles too: transpose half the time.
    if rng.random_bool(0.5) {
        Region::from_coords([(x0, y), (x1, y), (apex_x, y + dir)])
            .expect("a needle has positive area")
    } else {
        Region::from_coords([(y, x0), (y, x1), (y + dir, apex_x)])
            .expect("a needle has positive area")
    }
}

/// Scales every coordinate by an exact power of two.
fn scaled(region: &Region, s: f64) -> Region {
    Region::new(region.polygons().iter().map(|p| {
        Polygon::new(p.vertices().iter().map(|v| Point::new(v.x * s, v.y * s)))
            .expect("pow-of-two scaling preserves validity")
    }))
    .expect("non-empty")
}

/// The four grid coordinates of a box: `[x-lines], [y-lines]`.
fn grid_lines(b: [f64; 4]) -> ([f64; 2], [f64; 2]) {
    ([b[0], b[2]], [b[1], b[3]])
}

// ---------------------------------------------------------------------------
// The ulp-adversarial family
// ---------------------------------------------------------------------------

/// Stream separator for the ulp generator's RNG, so the family draws
/// from a different sequence than the classic families at the same seed.
const ULP_STREAM: u64 = 0x5bd1_e995_u64;

/// Steps `v` by `|k|` ulps (`k < 0` steps towards `-∞`).
pub(crate) fn ulp_step(mut v: f64, k: i64) -> f64 {
    for _ in 0..k.abs() {
        v = if k > 0 { v.next_up() } else { v.next_down() };
    }
    v
}

/// `v` exactly (one time in three), otherwise `v` nudged 1–4 ulps in a
/// random direction — the contact adversary of the ulp family. Zero is
/// returned unchanged: stepping it would manufacture a subnormal, which
/// is a different (and meaningless) notion of "one ulp off a grid line".
fn ulp_near(rng: &mut SplitMix64, v: f64) -> f64 {
    if v == 0.0 || rng.random_bool(1.0 / 3.0) {
        return v;
    }
    let k = rng.random_range(1i64..=4);
    ulp_step(v, if rng.random_bool(0.5) { k } else { -k })
}

/// A quarter-lattice margin: `0.25 + j/2` for `j ∈ 0..=4`. Quarter
/// values are exact and never collide with the half-integer lattice, so
/// a coordinate offset by one is at least `0.25` from every grid line.
fn quarter(rng: &mut SplitMix64) -> f64 {
    0.25 + rng.random_range(0i64..=4) as f64 * 0.5
}

/// A quarter-lattice point strictly between `v0` and `v1` (which are
/// half-integer lattice values with `v1 - v0 >= 0.5`).
fn inside_quarter(rng: &mut SplitMix64, v0: f64, v1: f64) -> f64 {
    let steps = ((v1 - v0) * 4.0) as i64; // exact: the gap is a multiple of 1/4
    v0 + 0.25 * rng.random_range(1..steps) as f64
}

/// A rectilinear region that *broadly straddles* both crossing lines
/// `[u0, u1]` of the reference (by at least a quarter unit on each
/// side), with extra vertices inserted on its two straddling edges at
/// the line coordinates nudged 0–4 ulps.
///
/// The nudged vertices force edge division and band classification to
/// make sign decisions at 1-ulp separations — the static filter fails
/// there and the exact fallback decides. Because the bulk extends at
/// least a quarter unit past every line it flirts with, the *tile set*
/// is invariant under the nudges: a 1-ulp strip is always a sliver of a
/// tile the region occupies broadly, so the clipping baseline (which
/// thresholds tiny clip areas away) must still agree exactly with
/// `compute_cdr`. The region's own extremes sit on quarter-lattice
/// values, off every half-integer grid line, so in the reversed pair the
/// other regions never graze *its* mbb lines either.
fn ulp_straddler(rng: &mut SplitMix64, reference: [f64; 4]) -> Region {
    // Work in (u, v): u is the crossing axis, v the band axis.
    let transpose = rng.random_bool(0.5);
    let ([u0, u1], [v0, v1]) = if transpose {
        ([reference[1], reference[3]], [reference[0], reference[2]])
    } else {
        ([reference[0], reference[2]], [reference[1], reference[3]])
    };
    let big_u0 = u0 - quarter(rng);
    let big_u1 = u1 + quarter(rng);
    let (band_lo, band_hi) = match rng.random_range(0u32..4) {
        0 => (v0 - quarter(rng), v1 + quarter(rng)),
        1 => (v0 - quarter(rng), inside_quarter(rng, v0, v1)),
        2 => (inside_quarter(rng, v0, v1), v1 + quarter(rng)),
        _ => {
            let steps = ((v1 - v0) * 4.0) as i64;
            if steps >= 3 {
                let a = rng.random_range(1..steps - 1);
                let b = rng.random_range(a + 1..steps);
                (v0 + 0.25 * a as f64, v0 + 0.25 * b as f64)
            } else {
                (v0 - quarter(rng), v1 + quarter(rng))
            }
        }
    };
    // Independent nudges on the low and high straddling edges: the same
    // grid line can be approached from below on one edge and from above
    // on the other.
    let pts_uv = [
        (big_u0, band_lo),
        (ulp_near(rng, u0), band_lo),
        (ulp_near(rng, u1), band_lo),
        (big_u1, band_lo),
        (big_u1, band_hi),
        (ulp_near(rng, u1), band_hi),
        (ulp_near(rng, u0), band_hi),
        (big_u0, band_hi),
    ];
    let coords = pts_uv.map(|(u, v)| if transpose { (v, u) } else { (u, v) });
    Region::from_coords(coords).expect("a straddler outline is a valid polygon")
}

/// The ulp-adversarial scenario for `seed`: one or two straddlers plus
/// the exact reference, optionally at `2^±40` magnitude (power-of-two
/// scaling preserves every ulp relationship exactly).
pub fn generate_ulp(seed: u64) -> Scenario {
    let rng = &mut SplitMix64::seed_from_u64(seed ^ ULP_STREAM);
    let reference = lattice_box(rng);
    let n = rng.random_range(1usize..=2);
    let mut regions: Vec<Region> = (0..n).map(|_| ulp_straddler(rng, reference)).collect();
    regions.push(rect_region(reference));
    match rng.random_range(0u32..8) {
        0 => regions = regions.iter().map(|r| scaled(r, 2f64.powi(40))).collect(),
        1 => regions = regions.iter().map(|r| scaled(r, 2f64.powi(-40))).collect(),
        _ => {}
    }
    Scenario { family: "ulp-adversarial", regions }
}

// ---------------------------------------------------------------------------
// The join-clusters family
// ---------------------------------------------------------------------------

/// Stream separator for the join generator's RNG (distinct from
/// [`ULP_STREAM`] and the classic stream), so `--family join` draws a
/// different sequence than the other families at the same seed.
const JOIN_STREAM: u64 = 0xff51_afd7_u64;

/// The spatial-join adversarial scenario for `seed`: a heavy MBB overlap
/// cluster around the reference — boxes anchored to the reference's own
/// grid lines (shared lines, touching corners), multi-rect members, and
/// thin slivers pinned onto a grid line — plus one or two far satellites
/// whose boxes are strictly separated, so every seed exercises *both*
/// sides of the join's partition: mask emission and the exact pipeline.
/// A quarter of seeds run at `2^±40` magnitude.
pub fn generate_join(seed: u64) -> Scenario {
    let rng = &mut SplitMix64::seed_from_u64(seed ^ JOIN_STREAM);
    let reference = lattice_box(rng);
    let (xs, ys) = grid_lines(reference);

    let cluster = rng.random_range(3usize..=6);
    let mut regions: Vec<Region> = (0..cluster)
        .map(|_| match rng.random_range(0u32..4) {
            0 | 1 => rect_region(anchored_box(rng, &xs, &ys)),
            2 => {
                let members = rng.random_range(2usize..=3);
                multi_rect_region(rng, members, &xs, &ys)
            }
            _ => {
                // A sliver half a unit tall pinned onto a grid line:
                // a degenerate-MBB member of the overlap cluster.
                let y = anchored(rng, &ys);
                rect_region([xs[0], y, xs[1], y + 0.5])
            }
        })
        .collect();
    // Far satellites: translated whole lattice units beyond the lattice
    // extent, so their boxes are strictly inside one outer tile of every
    // cluster member (`k/2 ± 200` stays exact in f64).
    for _ in 0..rng.random_range(1usize..=2) {
        let b = lattice_box(rng);
        let dx = if rng.random_bool(0.5) { 200.0 } else { -200.0 };
        let dy = if rng.random_bool(0.5) { 200.0 } else { -200.0 };
        regions.push(rect_region([b[0] + dx, b[1] + dy, b[2] + dx, b[3] + dy]));
    }
    regions.push(rect_region(reference));

    match rng.random_range(0u32..8) {
        0 => regions = regions.iter().map(|r| scaled(r, 2f64.powi(40))).collect(),
        1 => regions = regions.iter().map(|r| scaled(r, 2f64.powi(-40))).collect(),
        _ => {}
    }
    Scenario { family: "join-clusters", regions }
}

/// Deterministically generates the scenario for `seed`.
///
/// One seed in five goes to the ulp-adversarial family through its own
/// RNG stream; the remaining seeds keep the exact historical seed →
/// scenario mapping of the six classic families, so pinned regression
/// seeds (e.g. 57) still replay their original geometry. (The
/// join-clusters family is reachable only through `--family join` /
/// [`generate_join`], keeping this mapping frozen.)
pub fn generate(seed: u64) -> Scenario {
    if seed.is_multiple_of(5) {
        return generate_ulp(seed);
    }
    let rng = &mut SplitMix64::seed_from_u64(seed);
    let reference = lattice_box(rng);
    let (xs, ys) = grid_lines(reference);

    let family_idx = rng.random_range(0u32..6);
    let (family, mut regions) = match family_idx {
        0 => {
            // Rectangles anchored to the reference grid: shared lines,
            // touching corners, exact tile fills, straddles.
            let primaries = rng.random_range(1usize..=3);
            let mut rs: Vec<Region> =
                (0..primaries).map(|_| rect_region(anchored_box(rng, &xs, &ys))).collect();
            rs.push(rect_region(reference));
            ("anchored-rects", rs)
        }
        1 => {
            // Multi-polygon regions straddling tiles, members touching
            // along edges and corners.
            let a_count = rng.random_range(2usize..=4);
            let a = multi_rect_region(rng, a_count, &xs, &ys);
            let b_count = rng.random_range(1usize..=2);
            let b = multi_rect_region(rng, b_count, &xs, &ys);
            ("archipelago", vec![a, b, rect_region(reference)])
        }
        2 => {
            // Needles: near-degenerate triangles lying on or crossing
            // grid lines.
            let n = rng.random_range(1usize..=2);
            let mut rs: Vec<Region> = (0..n).map(|_| needle_region(rng, &xs, &ys)).collect();
            rs.push(rect_region(reference));
            ("needles", rs)
        }
        3 => {
            // Rectilinear outlines with collinear consecutive edges; the
            // cut positions include the reference's own grid lines, so
            // vertices land exactly on crossings.
            let outline = anchored_box(rng, &xs, &ys);
            let mut xcuts = xs.to_vec();
            let mut ycuts = ys.to_vec();
            for _ in 0..rng.random_range(0usize..=3) {
                xcuts.push(half(rng));
                ycuts.push(half(rng));
            }
            let a = Region::single(subdivided_rect(outline, &xcuts, &ycuts));
            ("collinear-staircase", vec![a, rect_region(reference)])
        }
        4 => {
            // A square reference plus a triangle whose hypotenuse passes
            // exactly through two opposite grid corners.
            let side = rng.random_range(1i64..=60) as f64;
            let sq = [reference[0], reference[1], reference[0] + side, reference[1] + side];
            let s = rng.random_range(1i64..=20) as f64 / 2.0;
            let tri = Region::from_coords([
                (sq[0] - s, sq[1] - s),
                (sq[2] + s, sq[3] + s),
                (sq[2] + s, sq[1] - s),
            ])
            .expect("diagonal triangle has positive area");
            ("corner-diagonal", vec![tri, rect_region(sq)])
        }
        _ => {
            // Degenerate-MBB neighbours: primaries collapsed to a single
            // row/column of the lattice (thin slivers half a unit wide)
            // sharing lines with the reference.
            let y = anchored(rng, &ys);
            let sliver = [xs[0], y, xs[1], y + 0.5];
            let mut rs = vec![rect_region(sliver)];
            rs.push(rect_region(anchored_box(rng, &xs, &ys)));
            rs.push(rect_region(reference));
            ("slivers", rs)
        }
    };

    // A quarter of scenarios run at extreme magnitudes; powers of two
    // keep every coordinate exact.
    match rng.random_range(0u32..8) {
        0 => {
            let s = 2f64.powi(40);
            regions = regions.iter().map(|r| scaled(r, s)).collect();
        }
        1 => {
            let s = 2f64.powi(-40);
            regions = regions.iter().map(|r| scaled(r, s)).collect();
        }
        _ => {}
    }

    Scenario { family, regions }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = generate(seed);
            let b = generate(seed);
            assert_eq!(a.family, b.family);
            assert_eq!(a.regions, b.regions);
        }
    }

    #[test]
    fn every_family_appears_and_regions_are_valid() {
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..200 {
            let s = generate(seed);
            seen.insert(s.family);
            assert!(s.regions.len() >= 2, "seed {seed}");
            for r in &s.regions {
                assert!(r.area() > 0.0, "seed {seed}");
                for p in r.polygons() {
                    assert!(p.is_simple(), "seed {seed}: non-simple polygon");
                }
            }
        }
        assert_eq!(seen.len(), 7, "families seen: {seen:?}");
    }

    #[test]
    fn classic_seed_mapping_is_preserved() {
        // The ulp family must not have re-mapped historical seeds: the
        // pinned regression seed 57 still generates its original
        // micro-scale needles scenario.
        assert_eq!(generate(57).family, "needles");
    }

    /// The join family must feed both sides of the partition: on (almost)
    /// every seed some ordered pair is box-decided (mask-emitted) *and*
    /// some pair is undecided (routed to the exact pipeline) — otherwise
    /// the `--family join` sweep would not actually exercise the join.
    #[test]
    fn join_family_exercises_both_partition_sides() {
        use cardir_engine::{decided_tile, RegionCache};
        let (mut with_decided, mut with_undecided, mut scaled_seeds) = (0u32, 0u32, 0u32);
        for seed in 0..200u64 {
            let s = generate_join(seed);
            assert_eq!(s.family, "join-clusters");
            assert_eq!(s.regions, generate_join(seed).regions, "seed {seed}: non-deterministic");
            assert!(s.regions.len() >= 5, "seed {seed}");
            for r in &s.regions {
                assert!(r.area() > 0.0, "seed {seed}");
                for p in r.polygons() {
                    assert!(p.is_simple(), "seed {seed}: non-simple polygon");
                }
            }
            if s.regions.iter().any(|r| r.mbb().max.x.abs() > 1_000.0) {
                scaled_seeds += 1;
            }
            let cache = RegionCache::build(&s.regions);
            let (mut any_decided, mut any_undecided) = (false, false);
            for i in 0..cache.len() {
                for j in 0..cache.len() {
                    if i != j {
                        match decided_tile(cache.mbb(i), cache.mbb(j)) {
                            Some(_) => any_decided = true,
                            None => any_undecided = true,
                        }
                    }
                }
            }
            with_decided += any_decided as u32;
            with_undecided += any_undecided as u32;
        }
        assert!(with_decided >= 195, "only {with_decided} / 200 seeds had mask-emitted pairs");
        assert!(with_undecided >= 195, "only {with_undecided} / 200 seeds had exact pairs");
        assert!(scaled_seeds > 20, "only {scaled_seeds} / 200 seeds ran at 2^±40");
    }

    #[test]
    fn ulp_family_straddles_and_stays_valid() {
        let mut nudged_seeds = 0;
        for seed in 0..200u64 {
            let s = generate_ulp(seed);
            assert_eq!(s.family, "ulp-adversarial");
            assert!(s.regions.len() >= 2, "seed {seed}");
            let reference = s.regions.last().unwrap().mbb();
            let mut nudged = false;
            for r in &s.regions {
                assert!(r.area() > 0.0, "seed {seed}");
                for p in r.polygons() {
                    assert!(p.is_simple(), "seed {seed}: non-simple polygon");
                    for v in p.vertices() {
                        // Any vertex within 4 ulps of a reference grid
                        // line is either exactly on it or a nudge.
                        for (c, line) in [
                            (v.x, reference.min.x),
                            (v.x, reference.max.x),
                            (v.y, reference.min.y),
                            (v.y, reference.max.y),
                        ] {
                            if c != line && (c - line).abs() <= 4.0 * (line.abs() * f64::EPSILON) && line != 0.0 {
                                nudged = true;
                            }
                        }
                    }
                }
            }
            if nudged {
                nudged_seeds += 1;
            }
        }
        // The whole point of the family: most seeds carry real 1–4 ulp
        // contact geometry.
        assert!(nudged_seeds > 100, "only {nudged_seeds} / 200 seeds had ulp nudges");
    }
}
