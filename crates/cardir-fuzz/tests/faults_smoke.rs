//! Smoke test of the `--faults` check family: a block of seeded
//! fault-injection iterations must find no divergences.
//!
//! This is its own test binary, so its process-global failpoint use
//! cannot race the lib's unit tests; the single test needs no internal
//! serialization either.

#[test]
fn seeded_fault_block_is_divergence_free() {
    let report = cardir_fuzz::run_faults(1, 12);
    assert_eq!(report.iterations, 12);
    assert!(
        report.divergences.is_empty(),
        "unexpected fault-injection divergences:\n{}",
        report
            .divergences
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(cardir_faults::armed_sites().is_empty(), "failpoints left armed");
}
