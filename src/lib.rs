//! # cardir — Computing and Handling Cardinal Direction Information
//!
//! A full reproduction of Skiadopoulos, Giannoukos, Vassiliadis, Sellis &
//! Koubarakis, *Computing and Handling Cardinal Direction Information*
//! (EDBT 2004): linear-time computation of cardinal direction relations
//! (with and without percentages) between composite polygonal regions,
//! the polygon-clipping baseline, the CARDIRECT annotation/persistence/
//! query tool, and the qualitative-reasoning layer around the model.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`geometry`] — polygons, `REG*` regions, MBBs, `E_l`/`E'_m` areas,
//!   clipping ([`cardir_geometry`]);
//! * [`core`] — `Compute-CDR`, `Compute-CDR%`, relations, matrices, the
//!   clipping baseline ([`cardir_core`]);
//! * [`reasoning`] — disjunctive relations, inverses, realizable pairs,
//!   constraint networks, weak composition ([`cardir_reasoning`]);
//! * [`cardirect`] — configurations, XML persistence, the query language
//!   ([`cardir_cardirect`]);
//! * [`index`] — the R-tree used for query pruning ([`cardir_index`]);
//! * [`engine`] — the batch pairwise engine: region caching, MBB
//!   prefiltering, multi-threaded exact passes ([`cardir_engine`]);
//! * [`workloads`] — paper shapes, random generators, the Ancient-Greece
//!   scenario ([`cardir_workloads`]);
//! * [`segment`] — the raster-segmentation substrate of the usage
//!   scenario ([`cardir_segment`]);
//! * [`telemetry`] — stdlib-only counters, histograms, span timers, and
//!   report / JSON-lines sinks ([`cardir_telemetry`]);
//! * [`faults`] — deterministic failpoint injection for testing the
//!   stack's failure paths ([`cardir_faults`]);
//! * [`extensions`] — topological and distance relations, the paper's
//!   Section-5 future work ([`cardir_extensions`]).
//!
//! ## Quick start
//!
//! ```
//! use cardir::core::{compute_cdr, compute_cdr_pct};
//! use cardir::geometry::Region;
//!
//! // The reference region b and a primary region c half in NE(b), half
//! // in E(b) — Fig. 1c of the paper.
//! let b = Region::from_coords([(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]).unwrap();
//! let c = Region::from_coords([(5.0, 2.0), (7.0, 2.0), (7.0, 6.0), (5.0, 6.0)]).unwrap();
//!
//! assert_eq!(compute_cdr(&c, &b).to_string(), "NE:E");
//! let matrix = compute_cdr_pct(&c, &b);
//! assert_eq!(matrix.to_string(), "0% 0% 50%\n0% 0% 50%\n0% 0% 0%");
//! ```

pub mod error;

pub use cardir_cardirect as cardirect;
pub use cardir_core as core;
pub use cardir_engine as engine;
pub use cardir_extensions as extensions;
pub use cardir_faults as faults;
pub use cardir_geometry as geometry;
pub use cardir_index as index;
pub use cardir_reasoning as reasoning;
pub use cardir_segment as segment;
pub use cardir_telemetry as telemetry;
pub use cardir_workloads as workloads;

pub use error::CardirError;
