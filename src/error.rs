//! A unified error type over the whole workspace.
//!
//! Every crate keeps its own focused error enum — a geometry caller
//! matching on [`PolygonError`] should not have to know XML exists. This
//! facade type is for the opposite caller: an application driving the
//! full pipeline (parse a file, build a configuration, run the engine,
//! evaluate queries) that wants one `Result<_, CardirError>` with `?`
//! working at every layer.
//!
//! [`PolygonError`]: cardir_geometry::PolygonError

use std::fmt;

use cardir_cardirect::{ConfigError, EvalError, PersistError, QueryParseError, XmlError};
use cardir_core::{ComputeError, RelationParseError};
use cardir_engine::EngineError;
use cardir_geometry::{BoundingBoxError, PolygonError, RegionError, WktError};

/// Any error the cardir stack can produce, one variant per source type.
#[derive(Debug, Clone, PartialEq)]
pub enum CardirError {
    /// Invalid polygon construction (too few vertices, zero area, …).
    Polygon(PolygonError),
    /// Invalid region construction (no polygons, …).
    Region(RegionError),
    /// Invalid bounding-box corners (non-finite, inverted).
    BoundingBox(BoundingBoxError),
    /// Malformed WKT text.
    Wkt(WktError),
    /// Malformed relation text (`"B:N:NE"`-style).
    RelationParse(RelationParseError),
    /// A computation rejected its caller-supplied reference box.
    Compute(ComputeError),
    /// The batch engine rejected its input.
    Engine(EngineError),
    /// Invalid configuration edit (duplicate or unknown region id, …).
    Config(ConfigError),
    /// Malformed CARDIRECT XML document.
    Xml(XmlError),
    /// Crash-safe persistence failed (atomic save or recovery load).
    Persist(PersistError),
    /// Malformed query text.
    QueryParse(QueryParseError),
    /// Query evaluation referenced an unknown region or attribute.
    Eval(EvalError),
}

impl fmt::Display for CardirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CardirError::Polygon(e) => write!(f, "polygon: {e}"),
            CardirError::Region(e) => write!(f, "region: {e}"),
            CardirError::BoundingBox(e) => write!(f, "bounding box: {e}"),
            CardirError::Wkt(e) => write!(f, "wkt: {e}"),
            CardirError::RelationParse(e) => write!(f, "relation: {e}"),
            CardirError::Compute(e) => write!(f, "compute: {e}"),
            CardirError::Engine(e) => write!(f, "engine: {e}"),
            CardirError::Config(e) => write!(f, "configuration: {e}"),
            CardirError::Xml(e) => write!(f, "xml: {e}"),
            CardirError::Persist(e) => write!(f, "persistence: {e}"),
            CardirError::QueryParse(e) => write!(f, "query: {e}"),
            CardirError::Eval(e) => write!(f, "eval: {e}"),
        }
    }
}

impl std::error::Error for CardirError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CardirError::Polygon(e) => Some(e),
            CardirError::Region(e) => Some(e),
            CardirError::BoundingBox(e) => Some(e),
            CardirError::Wkt(e) => Some(e),
            CardirError::RelationParse(e) => Some(e),
            CardirError::Compute(e) => Some(e),
            CardirError::Engine(e) => Some(e),
            CardirError::Config(e) => Some(e),
            CardirError::Xml(e) => Some(e),
            CardirError::Persist(e) => Some(e),
            CardirError::QueryParse(e) => Some(e),
            CardirError::Eval(e) => Some(e),
        }
    }
}

macro_rules! from_impl {
    ($source:ty => $variant:ident) => {
        impl From<$source> for CardirError {
            fn from(e: $source) -> Self {
                CardirError::$variant(e)
            }
        }
    };
}

from_impl!(PolygonError => Polygon);
from_impl!(RegionError => Region);
from_impl!(BoundingBoxError => BoundingBox);
from_impl!(WktError => Wkt);
from_impl!(RelationParseError => RelationParse);
from_impl!(ComputeError => Compute);
from_impl!(EngineError => Engine);
from_impl!(ConfigError => Config);
from_impl!(XmlError => Xml);
from_impl!(PersistError => Persist);
from_impl!(QueryParseError => QueryParse);
from_impl!(EvalError => Eval);

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    /// `?` must lift every layer's error into [`CardirError`].
    #[test]
    fn question_mark_works_across_the_stack() {
        fn pipeline() -> Result<String, CardirError> {
            use cardir_geometry::from_wkt;
            let b = from_wkt("POLYGON ((0 0, 4 0, 4 4, 0 4))")?;
            let a = from_wkt("POLYGON ((5 2, 7 2, 7 6, 5 6))")?;
            let rel = cardir_core::try_compute_cdr_with_mbb(&a, b.mbb())?;
            let query = cardir_cardirect::parse_query("{(x, y) | x NE:E y}")?;
            let _ = query;
            Ok(rel.to_string())
        }
        assert_eq!(pipeline().unwrap(), "NE:E");
    }

    #[test]
    fn conversions_preserve_the_source() {
        let bad = cardir_geometry::from_wkt("nonsense").unwrap_err();
        let unified: CardirError = bad.clone().into();
        assert_eq!(unified, CardirError::Wkt(bad));
        assert!(unified.source().is_some());
        assert!(unified.to_string().starts_with("wkt: "));

        let compute = cardir_core::ComputeError::InvertedBounds(
            cardir_geometry::BoundingBox {
                min: cardir_geometry::Point::new(1.0, 0.0),
                max: cardir_geometry::Point::new(0.0, 1.0),
            },
        );
        let unified: CardirError = compute.into();
        assert!(matches!(unified, CardirError::Compute(_)));
        assert!(unified.to_string().contains("inverted"));
    }
}
