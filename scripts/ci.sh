#!/usr/bin/env bash
# The repository's offline CI gate: release build, full test suite, and
# warning-free clippy — with --offline, because the workspace has zero
# external dependencies and must keep building on a machine that has
# never contacted a registry.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace --all-targets
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "ci: all green"
