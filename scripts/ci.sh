#!/usr/bin/env bash
# The repository's offline CI gate: release build, full test suite, and
# warning-free clippy — with --offline, because the workspace has zero
# external dependencies and must keep building on a machine that has
# never contacted a registry.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace --all-targets
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings

# Telemetry smoke: the throughput bench must emit machine-readable JSON
# lines that the workspace's own parser accepts, and the robust-predicate
# and fused-pipeline counters must flow through the telemetry registry
# into that emission (geometry.exact_fallback is the series dashboards
# watch; engine_cell.fused_pairs and geometry.edge_flattens are the
# SoA-pipeline accounting the zero-reflatten claim rests on).
bench_json="$(mktemp /tmp/bench.XXXXXX.json)"
bench_trace="$(mktemp /tmp/trace.XXXXXX.json)"
trap 'rm -f "$bench_json" "$bench_trace"' EXIT
cargo run --release --offline -p cardir-bench --bin engine_throughput -- 100 \
    --json "$bench_json" --trace "$bench_trace" > /dev/null
cargo run --release --offline -p cardir-bench --bin json_check -- "$bench_json" \
    --require geometry.exact_fallback --require geometry.orient2d_calls \
    --require engine_cell.fused_pairs --require geometry.edge_flattens

# Execution-trace smoke: the same run recorded a Chrome trace_event
# timeline; it must survive the workspace's own JSON parser and the
# trace_report analyzer must be able to reconstruct per-thread
# utilization from it.
cargo run --release --offline -p cardir-bench --bin json_check -- "$bench_trace"
cargo run --release --offline -p cardir-bench --bin trace_report -- "$bench_trace" > /dev/null

# Bench-regression gate: the fresh N=100 run must stay within a generous
# 3x of the committed N=1000 baseline, per (mode, threads) series. Only
# the threads=1 cells are gated — multi-thread cells on a tiny N=100
# workload are spawn-overhead noise when the CI host has fewer cores
# than the baseline machine. The threshold absorbs the N difference and
# machine noise; a real structural regression (an accidental O(N^2) on
# the hot path, a serialization bug) overshoots it.
cargo run --release --offline -p cardir-bench --bin bench_diff -- BENCH_engine.json "$bench_json" \
    --filter threads=1 --threshold 3

# The same gate restricted to the quantitative cells: the fused one-sweep
# kernel is what keeps these within range of the qualitative ones, so a
# regression here means the percentage pipeline fell back to two-pass
# work (or worse) even if the qualitative cells still look fine.
cargo run --release --offline -p cardir-bench --bin bench_diff -- BENCH_engine.json "$bench_json" \
    --filter mode=quantitative --filter threads=1 --threshold 3

# Spatial-join smoke: the sweep-partitioned batch path must complete a
# 10k-region map (≈ 10^8 ordered pairs, counted not materialised;
# --compare-max 0 skips the quadratic all-pairs baseline here) and emit
# the join.* partition counters CI dashboards track.
join_json="$(mktemp /tmp/join.XXXXXX.json)"
trap 'rm -f "$bench_json" "$join_json"' EXIT
cargo run --release --offline -p cardir-bench --bin join_throughput -- 10000 \
    --compare-max 0 --json "$join_json" > /dev/null
cargo run --release --offline -p cardir-bench --bin json_check -- "$join_json" \
    --require join.candidates --require join.mask_emitted --require join.exact_pairs \
    --require join.fused_pairs

# Differential-fuzz smoke: 500 deterministic adversarial scenarios
# cross-checked across the whole stack; any divergence or panic fails the
# gate and prints its replayable seed.
cargo run --offline -p cardir-fuzz -- --iters 500 --seed 1

# Ulp-adversarial smoke: 250 seeds of geometry nudged 1-4 ulps around the
# reference's grid lines, cross-validated against the clipping baseline
# and audited against predicate-level ground truth.
cargo run --offline -p cardir-fuzz -- --family ulp --iters 250 --seed 1

# Spatial-join adversarial smoke: 200 seeds of heavy MBB overlap
# clusters on shared grid lines (with far satellites and 2^±40 scaling),
# cross-checking the sweep partition, the mask-emitted relations, and
# the materialized join against their per-pair oracles.
cargo run --offline -p cardir-fuzz -- --family join --iters 200 --seed 1

# Fault-injection smoke: seeded failpoint arming during differential runs
# (accounting closure, bit-identical survivors, torn-write recovery),
# plus the engine fault sweep suite.
cargo run --offline -p cardir-fuzz -- --faults --iters 120 --seed 1
cargo test -q --offline --test fault_injection

# Edit-script adversarial smoke: 150 seeds of incremental edit scripts
# (replaces, inserts, removes) on a journaled store, each step
# differentially checked against a fresh full spatial join, with
# drop/reopen replay cycles and a faulted block (compute errors, torn
# journal appends, kills mid-append and mid-compaction) that must leave
# pairs pending — never wrong — and converge after repair.
cargo run --offline -p cardir-fuzz -- --family edits --iters 150 --seed 1

# Incremental-engine gate: the edit bench at N=1000 must emit the
# invalidation and replay counters the delta-maintenance claims rest on,
# and edit throughput must stay within 3x of the committed baseline.
# edits_per_sec is higher-is-better, so it gates WITHOUT :lower — the
# previous :lower suffix inverted the ratio (base/new), which passed
# regressions and failed improvements.
incr_json="$(mktemp /tmp/incr.XXXXXX.json)"
trap 'rm -f "$bench_json" "$bench_trace" "$join_json" "$incr_json"' EXIT
cargo run --release --offline -p cardir-bench --bin incremental_throughput -- 1000 \
    --json "$incr_json" > /dev/null
cargo run --release --offline -p cardir-bench --bin json_check -- "$incr_json" \
    --require incremental.pairs_invalidated --require incremental.replay \
    --require incremental.speedup_vs_full
cargo run --release --offline -p cardir-bench --bin bench_diff -- BENCH_incremental.json "$incr_json" \
    --key incremental=regions --metric incremental.edits_per_sec \
    --filter regions=1000 --threshold 3

# Server smoke + gate (DESIGN.md §14): boot the cardird binary on an
# ephemeral port, drive it with loadgen over real TCP connections —
# loadgen exits non-zero on any non-2xx response, so this is a
# zero-error claim — then validate the emission and hold throughput
# within 3x of the committed BENCH_server.json baseline (K=8 matches
# the baseline's key; requests_per_sec is higher-is-better, no :lower).
server_json="$(mktemp /tmp/server.XXXXXX.json)"
server_log="$(mktemp /tmp/cardird.XXXXXX.log)"
server_dir="$(mktemp -d /tmp/cardird-data.XXXXXX)"
nan_json="$(mktemp /tmp/nan.XXXXXX.json)"
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$bench_json" "$bench_trace" "$join_json" "$incr_json" \
        "$server_json" "$server_log" "$server_dir" "$nan_json"
}
trap cleanup EXIT
target/release/cardird --addr 127.0.0.1:0 --data-dir "$server_dir" > "$server_log" &
server_pid=$!
server_addr=""
for _ in $(seq 1 100); do
    server_addr="$(sed -n 's/^listening on //p' "$server_log" | head -n 1)"
    [ -n "$server_addr" ] && break
    sleep 0.1
done
if [ -z "$server_addr" ]; then
    echo "ci: cardird did not report its address" >&2
    exit 1
fi
cargo run --release --offline -p cardir-bench --bin loadgen -- \
    --connections 8 --requests 50 --addr "$server_addr" --json "$server_json" > /dev/null
cargo run --release --offline -p cardir-bench --bin json_check -- "$server_json" \
    --require server.requests --require server.errors \
    --require server.requests_per_sec --require server.latency_p95_ns
cargo run --release --offline -p cardir-bench --bin bench_diff -- BENCH_server.json "$server_json" \
    --key server=connections --metric server.requests_per_sec \
    --filter connections=8 --threshold 3
kill "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""

# The non-finite gate must actually gate: a baseline whose over-range
# literal (1e999, which the JSON layer parses to infinity) poisons the
# improvement ratio has to fail bench_diff loudly — refusing to gate —
# not sort as Equal and pass.
printf '{"type":"server","connections":8,"requests_per_sec":1e999}\n' > "$nan_json"
if cargo run --release --offline -p cardir-bench --bin bench_diff -- "$nan_json" "$server_json" \
    --key server=connections --metric server.requests_per_sec --threshold 3 > /dev/null 2>&1; then
    echo "ci: bench_diff accepted a non-finite baseline value" >&2
    exit 1
fi

echo "ci: all green"
