//! Cross-cutting invariants: numeric scale robustness, exhaustive
//! relation round trips, and agreement between the two reasoning
//! engines.

use cardir::core::{compute_cdr, compute_cdr_pct, CardinalRelation, DirectionMatrix};
use cardir::geometry::Region;
use cardir::reasoning::{ClosureOutcome, DisjunctiveNetwork, DisjunctiveRelation, Network};
use proptest::prelude::*;

/// All 511 basic relations survive Display → FromStr → Display, and the
/// matrix representation round-trips too.
#[test]
fn all_511_relations_round_trip() {
    let mut seen = std::collections::HashSet::new();
    for r in CardinalRelation::all() {
        let text = r.to_string();
        let parsed: CardinalRelation = text.parse().unwrap();
        assert_eq!(parsed, r);
        assert_eq!(parsed.to_string(), text);
        assert!(seen.insert(text), "duplicate display for {r:?}");
        assert_eq!(DirectionMatrix::from_relation(r).relation(), Some(r));
    }
    assert_eq!(seen.len(), 511);
}

fn scale_region(r: &Region, factor: f64) -> Region {
    Region::new(
        r.polygons()
            .iter()
            .map(|p| p.scaled(factor, cardir::geometry::Point::ORIGIN).unwrap())
            .collect::<Vec<_>>(),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Uniform scaling preserves the qualitative relation across ten
    /// orders of magnitude — the algorithms are comparison-based.
    #[test]
    fn scale_invariance(seed in 0u64..u64::MAX, log_scale in -6i32..9) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use cardir::workloads::star_polygon;
        use cardir::geometry::Point;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Region::single(star_polygon(&mut rng, Point::new(3.0, -2.0), 1.0, 5.0, 12));
        let b = Region::single(star_polygon(&mut rng, Point::ORIGIN, 2.0, 6.0, 12));
        let factor = 10f64.powi(log_scale);
        let base = compute_cdr(&a, &b);
        let scaled = compute_cdr(&scale_region(&a, factor), &scale_region(&b, factor));
        prop_assert_eq!(base, scaled, "factor {}", factor);
        // Percentages are scale-free as well.
        let pct = compute_cdr_pct(&a, &b);
        let pct_scaled = compute_cdr_pct(&scale_region(&a, factor), &scale_region(&b, factor));
        prop_assert!(pct.approx_eq(&pct_scaled, 1e-6), "factor {}", factor);
    }

    /// The algebraic closure never refutes a network the witness solver
    /// proves consistent — and the witness solver never satisfies a
    /// network the closure refutes.
    #[test]
    fn closure_and_solver_agree(seed in 0u64..u64::MAX) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use cardir::workloads::star_polygon;
        use cardir::geometry::Point;
        let mut rng = StdRng::seed_from_u64(seed);
        // Random basic-relation network over 3 variables — sometimes
        // satisfiable (drawn from geometry), sometimes random garbage.
        let names = ["a", "b", "c"];
        let mut net = Network::new();
        let mut closure = DisjunctiveNetwork::new();
        for v in names {
            net.add_variable(v).unwrap();
            closure.add_variable(v).unwrap();
        }
        let geometric: bool = rng.random();
        let regions: Vec<Region> = (0..3)
            .map(|_| {
                let c = Point::new(rng.random_range(-9.0..9.0), rng.random_range(-9.0..9.0));
                Region::single(star_polygon(&mut rng, c, 1.0, 4.0, 8))
            })
            .collect();
        for i in 0..3 {
            for j in 0..3 {
                if i == j { continue; }
                let rel = if geometric {
                    compute_cdr(&regions[i], &regions[j])
                } else {
                    CardinalRelation::from_bits(rng.random_range(1..512)).unwrap()
                };
                net.add_constraint(names[i], rel, names[j]).unwrap();
                closure.constrain(names[i], DisjunctiveRelation::singleton(rel), names[j]).unwrap();
            }
        }
        let solved = net.solve();
        let closed = closure.close();
        // Closure refuted ⇒ solver must not have found a witness.
        if closed == ClosureOutcome::Inconsistent {
            prop_assert!(!solved.is_consistent(), "closure refuted a witnessed network");
        }
        // Solver refuted (exact) ⇒ geometric networks never reach here;
        // closure may or may not catch it (weaker), no assertion needed.
        if geometric {
            prop_assert!(solved.is_consistent(), "geometric networks have witnesses");
            prop_assert_eq!(closed, ClosureOutcome::Closed);
        }
    }
}

/// Extreme scale ratios: a huge region around a tiny reference. The
/// comparison-based `Compute-CDR` classifies the razor-thin middle
/// strips exactly; the area-thresholded clipping baseline *loses* them
/// (their area is 10⁻¹⁵ of the total, below any sane threshold) — a
/// robustness edge of the paper's approach worth pinning down.
#[test]
fn mixed_scale_robustness_edge() {
    let tiny = Region::from_coords([(1e-7, 1e-7), (3e-7, 1e-7), (3e-7, 3e-7), (1e-7, 3e-7)]).unwrap();
    let huge = Region::from_coords([(-1e8, -1e8), (1e8, -1e8), (1e8, 1e8), (-1e8, 1e8)]).unwrap();
    assert_eq!(compute_cdr(&tiny, &huge).to_string(), "B");
    let exact = compute_cdr(&huge, &tiny);
    assert_eq!(exact, CardinalRelation::OMNI);
    let clipped = cardir::core::clipping_cdr(&huge, &tiny).relation;
    // The clipping answer is a subset (it can only lose thin tiles)…
    assert!(clipped.is_subset_of(exact));
    // …and here it genuinely does lose the four edge strips.
    assert!(clipped.tile_count() < 9, "expected the baseline to drop thin strips");
}
