//! Cross-cutting invariants: numeric scale robustness, exhaustive
//! relation round trips, and agreement between the two reasoning
//! engines. Randomised cases draw from a seeded [`SplitMix64`], so every
//! run checks the identical case list.

use cardir::core::{compute_cdr, compute_cdr_pct, CardinalRelation, DirectionMatrix};
use cardir::geometry::{Point, Region};
use cardir::reasoning::{ClosureOutcome, DisjunctiveNetwork, DisjunctiveRelation, Network};
use cardir::workloads::{star_polygon, SplitMix64};

/// All 511 basic relations survive Display → FromStr → Display, and the
/// matrix representation round-trips too.
#[test]
fn all_511_relations_round_trip() {
    let mut seen = std::collections::HashSet::new();
    for r in CardinalRelation::all() {
        let text = r.to_string();
        let parsed: CardinalRelation = text.parse().unwrap();
        assert_eq!(parsed, r);
        assert_eq!(parsed.to_string(), text);
        assert!(seen.insert(text), "duplicate display for {r:?}");
        assert_eq!(DirectionMatrix::from_relation(r).relation(), Some(r));
    }
    assert_eq!(seen.len(), 511);
}

fn scale_region(r: &Region, factor: f64) -> Region {
    Region::new(
        r.polygons()
            .iter()
            .map(|p| p.scaled(factor, Point::ORIGIN).unwrap())
            .collect::<Vec<_>>(),
    )
    .unwrap()
}

/// Uniform scaling preserves the qualitative relation across ten orders
/// of magnitude — the algorithms are comparison-based.
#[test]
fn scale_invariance() {
    let mut rng = SplitMix64::seed_from_u64(0x5ca1e);
    for case in 0..64 {
        let a = Region::single(star_polygon(&mut rng, Point::new(3.0, -2.0), 1.0, 5.0, 12));
        let b = Region::single(star_polygon(&mut rng, Point::ORIGIN, 2.0, 6.0, 12));
        let log_scale: i32 = rng.random_range(-6..9);
        let factor = 10f64.powi(log_scale);
        let base = compute_cdr(&a, &b);
        let scaled = compute_cdr(&scale_region(&a, factor), &scale_region(&b, factor));
        assert_eq!(base, scaled, "case {case}, factor {factor}");
        // Percentages are scale-free as well.
        let pct = compute_cdr_pct(&a, &b);
        let pct_scaled = compute_cdr_pct(&scale_region(&a, factor), &scale_region(&b, factor));
        assert!(pct.approx_eq(&pct_scaled, 1e-6), "case {case}, factor {factor}");
    }
}

/// The algebraic closure never refutes a network the witness solver
/// proves consistent — and the witness solver never satisfies a network
/// the closure refutes.
#[test]
fn closure_and_solver_agree() {
    let mut rng = SplitMix64::seed_from_u64(0xc105e);
    for case in 0..64 {
        // Random basic-relation network over 3 variables — sometimes
        // satisfiable (drawn from geometry), sometimes random garbage.
        let names = ["a", "b", "c"];
        let mut net = Network::new();
        let mut closure = DisjunctiveNetwork::new();
        for v in names {
            net.add_variable(v).unwrap();
            closure.add_variable(v).unwrap();
        }
        let geometric = rng.random_bool(0.5);
        let regions: Vec<Region> = (0..3)
            .map(|_| {
                let c = Point::new(rng.random_range(-9.0..9.0), rng.random_range(-9.0..9.0));
                Region::single(star_polygon(&mut rng, c, 1.0, 4.0, 8))
            })
            .collect();
        for i in 0..3 {
            for j in 0..3 {
                if i == j {
                    continue;
                }
                let rel = if geometric {
                    compute_cdr(&regions[i], &regions[j])
                } else {
                    CardinalRelation::from_bits(rng.random_range(1u16..512)).unwrap()
                };
                net.add_constraint(names[i], rel, names[j]).unwrap();
                closure.constrain(names[i], DisjunctiveRelation::singleton(rel), names[j]).unwrap();
            }
        }
        let solved = net.solve();
        let closed = closure.close();
        // Closure refuted ⇒ solver must not have found a witness.
        if closed == ClosureOutcome::Inconsistent {
            assert!(!solved.is_consistent(), "case {case}: closure refuted a witnessed network");
        }
        // Solver refuted (exact) ⇒ geometric networks never reach here;
        // closure may or may not catch it (weaker), no assertion needed.
        if geometric {
            assert!(solved.is_consistent(), "case {case}: geometric networks have witnesses");
            assert_eq!(closed, ClosureOutcome::Closed, "case {case}");
        }
    }
}

/// Extreme scale ratios: a huge region around a tiny reference. The
/// comparison-based `Compute-CDR` classifies the razor-thin middle
/// strips exactly; the area-thresholded clipping baseline *loses* them
/// (their area is 10⁻¹⁵ of the total, below any sane threshold) — a
/// robustness edge of the paper's approach worth pinning down.
#[test]
fn mixed_scale_robustness_edge() {
    let tiny = Region::from_coords([(1e-7, 1e-7), (3e-7, 1e-7), (3e-7, 3e-7), (1e-7, 3e-7)]).unwrap();
    let huge = Region::from_coords([(-1e8, -1e8), (1e8, -1e8), (1e8, 1e8), (-1e8, 1e8)]).unwrap();
    assert_eq!(compute_cdr(&tiny, &huge).to_string(), "B");
    let exact = compute_cdr(&huge, &tiny);
    assert_eq!(exact, CardinalRelation::OMNI);
    let clipped = cardir::core::clipping_cdr(&huge, &tiny).relation;
    // The clipping answer is a subset (it can only lose thin tiles)…
    assert!(clipped.is_subset_of(exact));
    // …and here it genuinely does lose the four edge strips.
    assert!(clipped.tile_count() < 9, "expected the baseline to drop thin strips");
}
