//! Cross-validation of the paper's algorithms (DESIGN.md §7): on
//! hundreds of seeded random regions, `Compute-CDR` / `Compute-CDR%`
//! must agree with the clipping baseline, and the percentage matrices
//! must satisfy their invariants. All cases derive from a fixed
//! [`SplitMix64`] stream, so failures reproduce exactly.

use cardir::core::{clipping_cdr, compute_cdr, tile_areas, ALL_TILES};
use cardir::geometry::{Point, Region};
use cardir::workloads::{comb_polygon, star_polygon, SplitMix64};

/// A star polygon with 3–40 vertices anywhere near the origin.
fn random_star(rng: &mut SplitMix64) -> Region {
    let n = rng.random_range(3usize..40);
    let cx = rng.random_range(-10.0..10.0);
    let cy = rng.random_range(-10.0..10.0);
    let r = rng.random_range(0.5..6.0);
    Region::single(star_polygon(rng, Point::new(cx, cy), r * 0.4, r, n))
}

/// A composite region of 1–4 stars spread out on a grid.
fn random_composite(rng: &mut SplitMix64) -> Region {
    let k = rng.random_range(1usize..=4);
    let n = rng.random_range(4usize..16);
    let polys = (0..k)
        .map(|i| {
            let c = Point::new(i as f64 * 14.0 - 10.0, (i % 2) as f64 * 12.0 - 5.0);
            star_polygon(rng, c, 2.0, 5.0, n)
        })
        .collect::<Vec<_>>();
    Region::new(polys).unwrap()
}

/// The qualitative relation from edge division equals the one from
/// clipping, for random simple primaries over random references.
#[test]
fn qualitative_agrees_with_clipping() {
    let mut rng = SplitMix64::seed_from_u64(101);
    for case in 0..128 {
        let a = random_star(&mut rng);
        let b = random_star(&mut rng);
        let fast = compute_cdr(&a, &b);
        let baseline = clipping_cdr(&a, &b);
        assert_eq!(fast, baseline.relation, "case {case}: a={a} b={b}");
    }
}

/// Same for composite (REG*) primaries.
#[test]
fn composite_qualitative_agrees_with_clipping() {
    let mut rng = SplitMix64::seed_from_u64(102);
    for case in 0..128 {
        let a = random_composite(&mut rng);
        let b = random_star(&mut rng);
        let fast = compute_cdr(&a, &b);
        let baseline = clipping_cdr(&a, &b);
        assert_eq!(fast, baseline.relation, "case {case}");
    }
}

/// Per-tile areas agree with the clipping baseline within round-off.
#[test]
fn areas_agree_with_clipping() {
    let mut rng = SplitMix64::seed_from_u64(103);
    for case in 0..128 {
        let a = random_composite(&mut rng);
        let b = random_star(&mut rng);
        let fast = tile_areas(&a, &b);
        let baseline = clipping_cdr(&a, &b);
        let tol = 1e-9 * a.area().max(1.0);
        for t in ALL_TILES {
            assert!(
                (fast.get(t) - baseline.areas.get(t)).abs() < tol,
                "case {case}, tile {t}: {} vs {}",
                fast.get(t),
                baseline.areas.get(t)
            );
        }
    }
}

/// Tile areas are non-negative, sum to the primary's area, and their
/// positive support equals the qualitative relation (connecting
/// Theorems 1 and 2).
#[test]
fn percentage_invariants() {
    let mut rng = SplitMix64::seed_from_u64(104);
    for case in 0..128 {
        let a = random_composite(&mut rng);
        let b = random_star(&mut rng);
        let areas = tile_areas(&a, &b);
        let mut total = 0.0;
        for t in ALL_TILES {
            assert!(areas.get(t) >= 0.0, "case {case}, tile {t}");
            total += areas.get(t);
        }
        assert!((total - a.area()).abs() < 1e-9 * a.area().max(1.0), "case {case}");

        let matrix = areas.percentages();
        assert!((matrix.sum() - 100.0).abs() < 1e-9, "case {case}");

        let from_areas = areas.relation(1e-9 * a.area().max(1.0)).unwrap();
        let qualitative = compute_cdr(&a, &b);
        assert_eq!(from_areas, qualitative, "case {case}");
    }
}

/// Edge division introduces at most 4 extra edges per input edge (one
/// per grid line) and never loses edges.
#[test]
fn division_bounds() {
    let mut rng = SplitMix64::seed_from_u64(105);
    for case in 0..128 {
        let a = random_star(&mut rng);
        let b = random_star(&mut rng);
        let (_, stats) = cardir::core::compute_cdr_with_stats(&a, &b);
        assert!(stats.output_edges >= stats.input_edges, "case {case}");
        assert!(stats.output_edges <= 5 * stats.input_edges, "case {case}");
    }
}

/// Translating both regions together never changes the relation.
#[test]
fn translation_invariance() {
    let mut rng = SplitMix64::seed_from_u64(106);
    for case in 0..128 {
        let a = random_star(&mut rng);
        let b = random_star(&mut rng);
        let dx = rng.random_range(-50.0..50.0);
        let dy = rng.random_range(-50.0..50.0);
        let before = compute_cdr(&a, &b);
        let after = compute_cdr(&a.translated(dx, dy), &b.translated(dx, dy));
        assert_eq!(before, after, "case {case}: dx={dx} dy={dy}");
    }
}

/// The observed pair (a R1 b, b R2 a) is always predicted realizable by
/// the reasoning layer's exact pair table.
#[test]
fn observed_pairs_are_realizable() {
    let mut rng = SplitMix64::seed_from_u64(107);
    for case in 0..128 {
        let a = random_composite(&mut rng);
        let b = random_composite(&mut rng);
        let r_ab = compute_cdr(&a, &b);
        let r_ba = compute_cdr(&b, &a);
        assert!(
            cardir::reasoning::pair_realizable(r_ab, r_ba),
            "case {case}: pair ({r_ab}, {r_ba}) not in table"
        );
    }
}

/// Adversarial comb shapes: many grid-line crossings, exact agreement
/// still required.
#[test]
fn comb_primary_agrees_with_clipping() {
    let b = Region::from_coords([(0.0, 0.0), (40.0, 0.0), (40.0, 3.0), (0.0, 3.0)]).unwrap();
    for teeth in [1, 3, 10, 25] {
        let comb = Region::single(comb_polygon(-5.0, 1.0, 6.0, 1.0, teeth));
        let fast = compute_cdr(&comb, &b);
        let baseline = clipping_cdr(&comb, &b);
        assert_eq!(fast, baseline.relation, "teeth = {teeth}");
        let fast_areas = tile_areas(&comb, &b);
        for t in ALL_TILES {
            assert!(
                (fast_areas.get(t) - baseline.areas.get(t)).abs() < 1e-9 * comb.area(),
                "teeth {teeth}, tile {t}"
            );
        }
    }
}

/// Degenerate-adjacent cases: regions sharing boundary lines with the
/// reference mbb.
#[test]
fn shared_boundary_cases_agree() {
    let b = Region::from_coords([(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]).unwrap();
    let cases = [
        Region::from_coords([(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]).unwrap(), // identical
        Region::from_coords([(0.0, -4.0), (4.0, -4.0), (4.0, 0.0), (0.0, 0.0)]).unwrap(), // touches south
        Region::from_coords([(4.0, 4.0), (8.0, 4.0), (8.0, 8.0), (4.0, 8.0)]).unwrap(), // corner touch
        Region::from_coords([(-4.0, -4.0), (8.0, -4.0), (8.0, 8.0), (-4.0, 8.0)]).unwrap(), // superset
        Region::from_coords([(1.0, 1.0), (3.0, 1.0), (3.0, 3.0), (1.0, 3.0)]).unwrap(), // inside
    ];
    for a in cases {
        assert_eq!(compute_cdr(&a, &b), clipping_cdr(&a, &b).relation, "a = {a}");
    }
}
