//! Property-based cross-validation of the paper's algorithms (DESIGN.md
//! §7): on thousands of random regions, `Compute-CDR` / `Compute-CDR%`
//! must agree with the clipping baseline, and the percentage matrices
//! must satisfy their invariants.

use cardir::core::{clipping_cdr, compute_cdr, tile_areas, ALL_TILES};
use cardir::geometry::{Point, Region};
use cardir::workloads::{comb_polygon, star_polygon};
use proptest::prelude::*;

/// Strategy: a star polygon with 3–40 vertices anywhere near the origin.
fn arb_star() -> impl Strategy<Value = Region> {
    (
        3usize..40,
        -10.0f64..10.0,
        -10.0f64..10.0,
        0.5f64..6.0,
        0u64..u64::MAX,
    )
        .prop_map(|(n, cx, cy, r, seed)| {
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            let mut rng = StdRng::seed_from_u64(seed);
            Region::single(star_polygon(&mut rng, Point::new(cx, cy), r * 0.4, r, n))
        })
}

/// Strategy: a composite region of 1–4 stars spread out on a grid.
fn arb_composite() -> impl Strategy<Value = Region> {
    (1usize..=4, 4usize..16, 0u64..u64::MAX).prop_map(|(k, n, seed)| {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let polys = (0..k).map(|i| {
            let c = Point::new(i as f64 * 14.0 - 10.0, (i % 2) as f64 * 12.0 - 5.0);
            star_polygon(&mut rng, c, 2.0, 5.0, n)
        });
        Region::new(polys.collect::<Vec<_>>()).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The qualitative relation from edge division equals the one from
    /// clipping, for random simple primaries over random references.
    #[test]
    fn qualitative_agrees_with_clipping(a in arb_star(), b in arb_star()) {
        let fast = compute_cdr(&a, &b);
        let baseline = clipping_cdr(&a, &b);
        prop_assert_eq!(fast, baseline.relation, "a={} b={}", a, b);
    }

    /// Same for composite (REG*) primaries.
    #[test]
    fn composite_qualitative_agrees_with_clipping(a in arb_composite(), b in arb_star()) {
        let fast = compute_cdr(&a, &b);
        let baseline = clipping_cdr(&a, &b);
        prop_assert_eq!(fast, baseline.relation);
    }

    /// Per-tile areas agree with the clipping baseline within round-off.
    #[test]
    fn areas_agree_with_clipping(a in arb_composite(), b in arb_star()) {
        let fast = tile_areas(&a, &b);
        let baseline = clipping_cdr(&a, &b);
        let tol = 1e-9 * a.area().max(1.0);
        for t in ALL_TILES {
            prop_assert!(
                (fast.get(t) - baseline.areas.get(t)).abs() < tol,
                "tile {}: {} vs {}", t, fast.get(t), baseline.areas.get(t)
            );
        }
    }

    /// Tile areas are non-negative, sum to the primary's area, and their
    /// positive support equals the qualitative relation (connecting
    /// Theorems 1 and 2).
    #[test]
    fn percentage_invariants(a in arb_composite(), b in arb_star()) {
        let areas = tile_areas(&a, &b);
        let mut total = 0.0;
        for t in ALL_TILES {
            prop_assert!(areas.get(t) >= 0.0);
            total += areas.get(t);
        }
        prop_assert!((total - a.area()).abs() < 1e-9 * a.area().max(1.0));

        let matrix = areas.percentages();
        prop_assert!((matrix.sum() - 100.0).abs() < 1e-9);

        let from_areas = areas.relation(1e-9 * a.area().max(1.0)).unwrap();
        let qualitative = compute_cdr(&a, &b);
        prop_assert_eq!(from_areas, qualitative);
    }

    /// Edge division introduces at most 4 extra edges per input edge
    /// (one per grid line) and never loses edges.
    #[test]
    fn division_bounds(a in arb_star(), b in arb_star()) {
        let (_, stats) = cardir::core::compute_cdr_with_stats(&a, &b);
        prop_assert!(stats.output_edges >= stats.input_edges);
        prop_assert!(stats.output_edges <= 5 * stats.input_edges);
    }

    /// Translating both regions together never changes the relation.
    #[test]
    fn translation_invariance(a in arb_star(), b in arb_star(),
                              dx in -50.0f64..50.0, dy in -50.0f64..50.0) {
        let before = compute_cdr(&a, &b);
        let after = compute_cdr(&a.translated(dx, dy), &b.translated(dx, dy));
        prop_assert_eq!(before, after);
    }

    /// The observed pair (a R1 b, b R2 a) is always predicted realizable
    /// by the reasoning layer's exact pair table.
    #[test]
    fn observed_pairs_are_realizable(a in arb_composite(), b in arb_composite()) {
        let r_ab = compute_cdr(&a, &b);
        let r_ba = compute_cdr(&b, &a);
        prop_assert!(
            cardir::reasoning::pair_realizable(r_ab, r_ba),
            "pair ({}, {}) not in table", r_ab, r_ba
        );
    }
}

/// Adversarial comb shapes: many grid-line crossings, exact agreement
/// still required.
#[test]
fn comb_primary_agrees_with_clipping() {
    let b = Region::from_coords([(0.0, 0.0), (40.0, 0.0), (40.0, 3.0), (0.0, 3.0)]).unwrap();
    for teeth in [1, 3, 10, 25] {
        let comb = Region::single(comb_polygon(-5.0, 1.0, 6.0, 1.0, teeth));
        let fast = compute_cdr(&comb, &b);
        let baseline = clipping_cdr(&comb, &b);
        assert_eq!(fast, baseline.relation, "teeth = {teeth}");
        let fast_areas = tile_areas(&comb, &b);
        for t in ALL_TILES {
            assert!(
                (fast_areas.get(t) - baseline.areas.get(t)).abs() < 1e-9 * comb.area(),
                "teeth {teeth}, tile {t}"
            );
        }
    }
}

/// Degenerate-adjacent cases: regions sharing boundary lines with the
/// reference mbb.
#[test]
fn shared_boundary_cases_agree() {
    let b = Region::from_coords([(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]).unwrap();
    let cases = [
        Region::from_coords([(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]).unwrap(), // identical
        Region::from_coords([(0.0, -4.0), (4.0, -4.0), (4.0, 0.0), (0.0, 0.0)]).unwrap(), // touches south
        Region::from_coords([(4.0, 4.0), (8.0, 4.0), (8.0, 8.0), (4.0, 8.0)]).unwrap(), // corner touch
        Region::from_coords([(-4.0, -4.0), (8.0, -4.0), (8.0, 8.0), (-4.0, 8.0)]).unwrap(), // superset
        Region::from_coords([(1.0, 1.0), (3.0, 1.0), (3.0, 3.0), (1.0, 3.0)]).unwrap(), // inside
    ];
    for a in cases {
        assert_eq!(compute_cdr(&a, &b), clipping_cdr(&a, &b).relation, "a = {a}");
    }
}
