//! Proof that no per-pair code path re-flattens `Region` geometry: after
//! `RegionCache::build`, the process-global flatten counter
//! (`cardir::geometry::flatten::events`, bumped by every `Polygon::edges`
//! / `Region::edges` construction) must not move, no matter how many
//! pairs the engine computes, in either mode, with either enumeration
//! strategy. Before the fused SoA pipeline, the quantitative exact loop
//! flattened every primary's edges **twice per pair** (1,076,397 events
//! on the N=1000 bench vs 529,065 qualitative); this file pins the fix
//! at zero.
//!
//! The counter is process-global, so this test lives in its own
//! integration-test binary: any suite that runs a naive oracle
//! (`compute_cdr` & co.) legitimately flattens edges and would race the
//! delta. Keep naive entry points out of this file.

use cardir::engine::{BatchEngine, EngineMode, RegionCache, RunPolicy};
use cardir::geometry::{flatten, BoundingBox, Point, Region};
use cardir::workloads::{random_map, SplitMix64};

#[test]
fn engine_runs_never_reflatten_region_geometry() {
    let mut rng = SplitMix64::seed_from_u64(803);
    let extent = BoundingBox::new(Point::new(0.0, 0.0), Point::new(600.0, 450.0));
    let regions: Vec<Region> =
        random_map(&mut rng, 40, extent).into_iter().map(|m| m.region).collect();

    // The cache itself reads `Polygon::vertices` directly, so even the
    // build performs zero flatten events — but only the *post-build*
    // delta is the claim this test makes.
    let cache = RegionCache::build(&regions);
    let after_build = flatten::events();

    for mode in [EngineMode::Qualitative, EngineMode::Quantitative] {
        for threads in [1usize, 2, 8] {
            for prefilter in [true, false] {
                let engine = BatchEngine::new()
                    .with_mode(mode)
                    .with_threads(threads)
                    .with_prefilter(prefilter);

                let all = engine.compute_all(&cache);
                assert!(all.stats.pairs > 0);

                let joined = engine.run_join(&cache, &RunPolicy::default());
                let out = joined.materialize(&cache);
                assert_eq!(out.pairs.len(), all.pairs.len());
            }
        }
    }

    assert_eq!(
        flatten::events(),
        after_build,
        "an exact pipeline path re-flattened Region/Polygon edges \
         instead of scanning the cache's SoA store"
    );
}
