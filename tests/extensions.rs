//! Experiment A5 (DESIGN.md): the Section-5 future-work extensions —
//! topological and distance relations — validated against geometry and
//! against each other, over a fixed seeded case list.

use cardir::extensions::topology::topological_relation;
use cardir::extensions::{describe, min_distance, DistanceRelation, DistanceScheme, TopologicalRelation};
use cardir::geometry::{Point, Region};
use cardir::workloads::{star_polygon, SplitMix64};

fn random_star(rng: &mut SplitMix64) -> Region {
    let n = rng.random_range(3usize..24);
    let cx = rng.random_range(-8.0..8.0);
    let cy = rng.random_range(-8.0..8.0);
    let r = rng.random_range(0.5..5.0);
    Region::single(star_polygon(rng, Point::new(cx, cy), r * 0.4, r, n))
}

/// The topological relation and its converse are consistent.
#[test]
fn topology_converse_law() {
    let mut rng = SplitMix64::seed_from_u64(301);
    for case in 0..96 {
        let a = random_star(&mut rng);
        let b = random_star(&mut rng);
        let ab = topological_relation(&a, &b);
        let ba = topological_relation(&b, &a);
        assert_eq!(ab.converse(), ba, "case {case}");
    }
}

/// Minimum distance is symmetric, non-negative, and bounded by the
/// distance between any vertex pair.
#[test]
fn distance_laws() {
    let mut rng = SplitMix64::seed_from_u64(302);
    for case in 0..96 {
        let a = random_star(&mut rng);
        let b = random_star(&mut rng);
        let d_ab = min_distance(&a, &b);
        let d_ba = min_distance(&b, &a);
        assert!((d_ab - d_ba).abs() < 1e-12, "case {case}");
        assert!(d_ab >= 0.0, "case {case}");
        let va = a.polygons()[0].vertices()[0];
        let vb = b.polygons()[0].vertices()[0];
        assert!(d_ab <= va.distance(vb) + 1e-12, "case {case}");
    }
}

/// Cross-signal consistency: topology non-disjoint ⟺ separation 0, and
/// the combined description never panics across signals.
#[test]
fn combined_description_consistency() {
    let mut rng = SplitMix64::seed_from_u64(303);
    for case in 0..96 {
        let a = random_star(&mut rng);
        let b = random_star(&mut rng);
        let scheme = DistanceScheme::scaled_to(5.0);
        let d = describe(&a, &b, &scheme);
        let touching = d.topology != TopologicalRelation::Disjoint;
        assert_eq!(touching, d.separation == 0.0, "case {case}: {d}");
        assert_eq!(d.distance == DistanceRelation::Equal, touching, "case {case}");
        // Equality of regions forces the direction relation B.
        if d.topology == TopologicalRelation::Equals {
            assert_eq!(d.direction.to_string(), "B", "case {case}");
        }
    }
}

/// Identity: every region equals itself, at distance zero.
#[test]
fn self_description() {
    let mut rng = SplitMix64::seed_from_u64(304);
    for case in 0..96 {
        let a = random_star(&mut rng);
        assert_eq!(topological_relation(&a, &a), TopologicalRelation::Equals, "case {case}");
        assert_eq!(min_distance(&a, &a), 0.0, "case {case}");
    }
}

/// Containment chains: scaled-down copies nest.
#[test]
fn scaled_copies_nest() {
    let mut rng = SplitMix64::seed_from_u64(5);
    let outer_poly = star_polygon(&mut rng, Point::ORIGIN, 4.0, 6.0, 24);
    let inner_poly = outer_poly.scaled(0.5, Point::ORIGIN).unwrap();
    let outer = Region::single(outer_poly);
    let inner = Region::single(inner_poly);
    assert_eq!(topological_relation(&inner, &outer), TopologicalRelation::Inside);
    assert_eq!(topological_relation(&outer, &inner), TopologicalRelation::Contains);
    assert_eq!(min_distance(&inner, &outer), 0.0);
}

/// Direction and topology cooperate on the Greece scenario: regions with
/// a B tile in their relation are the only candidates for non-disjoint
/// topology (no two scenario regions overlap except by reconstruction).
#[test]
fn greece_topology_is_all_disjoint() {
    let regions = cardir::workloads::greece_scenario();
    for a in &regions {
        for b in &regions {
            if a.name == b.name {
                continue;
            }
            let t = topological_relation(&a.region, &b.region);
            assert_eq!(
                t,
                TopologicalRelation::Disjoint,
                "{} vs {}: {t} (landmasses should not overlap)",
                a.name,
                b.name
            );
        }
    }
}
