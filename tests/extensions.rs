//! Experiment A5 (DESIGN.md): the Section-5 future-work extensions —
//! topological and distance relations — validated against geometry and
//! against each other.

use cardir::extensions::topology::topological_relation;
use cardir::extensions::{describe, min_distance, DistanceRelation, DistanceScheme, TopologicalRelation};
use cardir::geometry::{Point, Region};
use cardir::workloads::star_polygon;
use proptest::prelude::*;

fn arb_star() -> impl Strategy<Value = Region> {
    (3usize..24, -8.0f64..8.0, -8.0f64..8.0, 0.5f64..5.0, 0u64..u64::MAX).prop_map(
        |(n, cx, cy, r, seed)| {
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            let mut rng = StdRng::seed_from_u64(seed);
            Region::single(star_polygon(&mut rng, Point::new(cx, cy), r * 0.4, r, n))
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The topological relation and its converse are consistent.
    #[test]
    fn topology_converse_law(a in arb_star(), b in arb_star()) {
        let ab = topological_relation(&a, &b);
        let ba = topological_relation(&b, &a);
        prop_assert_eq!(ab.converse(), ba);
    }

    /// Minimum distance is symmetric, non-negative, and bounded by the
    /// distance between any vertex pair.
    #[test]
    fn distance_laws(a in arb_star(), b in arb_star()) {
        let d_ab = min_distance(&a, &b);
        let d_ba = min_distance(&b, &a);
        prop_assert!((d_ab - d_ba).abs() < 1e-12);
        prop_assert!(d_ab >= 0.0);
        let va = a.polygons()[0].vertices()[0];
        let vb = b.polygons()[0].vertices()[0];
        prop_assert!(d_ab <= va.distance(vb) + 1e-12);
    }

    /// Cross-signal consistency: topology non-disjoint ⟺ separation 0,
    /// and the direction relation of overlapping regions includes a tile
    /// (trivially — but crucially never panics across signals).
    #[test]
    fn combined_description_consistency(a in arb_star(), b in arb_star()) {
        let scheme = DistanceScheme::scaled_to(5.0);
        let d = describe(&a, &b, &scheme);
        let touching = d.topology != TopologicalRelation::Disjoint;
        prop_assert_eq!(touching, d.separation == 0.0, "{}", d);
        prop_assert_eq!(d.distance == DistanceRelation::Equal, touching);
        // Equality of regions forces the direction relation B.
        if d.topology == TopologicalRelation::Equals {
            prop_assert_eq!(d.direction.to_string(), "B");
        }
    }

    /// Identity: every region equals itself, at distance zero.
    #[test]
    fn self_description(a in arb_star()) {
        prop_assert_eq!(topological_relation(&a, &a), TopologicalRelation::Equals);
        prop_assert_eq!(min_distance(&a, &a), 0.0);
    }
}

/// Containment chains: scaled-down copies nest.
#[test]
fn scaled_copies_nest() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(5);
    let outer_poly = star_polygon(&mut rng, Point::ORIGIN, 4.0, 6.0, 24);
    let inner_poly = outer_poly.scaled(0.5, Point::ORIGIN).unwrap();
    let outer = Region::single(outer_poly);
    let inner = Region::single(inner_poly);
    assert_eq!(topological_relation(&inner, &outer), TopologicalRelation::Inside);
    assert_eq!(topological_relation(&outer, &inner), TopologicalRelation::Contains);
    assert_eq!(min_distance(&inner, &outer), 0.0);
}

/// Direction and topology cooperate on the Greece scenario: regions with
/// a B tile in their relation are the only candidates for non-disjoint
/// topology (no two scenario regions overlap except by reconstruction).
#[test]
fn greece_topology_is_all_disjoint() {
    let regions = cardir::workloads::greece_scenario();
    for a in &regions {
        for b in &regions {
            if a.name == b.name {
                continue;
            }
            let t = topological_relation(&a.region, &b.region);
            assert_eq!(
                t,
                TopologicalRelation::Disjoint,
                "{} vs {}: {t} (landmasses should not overlap)",
                a.name,
                b.name
            );
        }
    }
}
