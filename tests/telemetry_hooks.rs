//! Cross-validation of the telemetry layer against the paper's cost
//! model (Theorem 1) and against the un-instrumented algorithms.
//!
//! On the jittered-grid star workload every ordered pair is computed
//! twice — plain and with a [`CountingHook`] — and the observed edge
//! counts must satisfy the theorem's bounds: each primary edge is
//! scanned exactly once (`edges_scanned == k_a`), a straight edge
//! crosses each of the four grid lines of `mbb(b)` at most once so it
//! divides into at most five sub-edges (`sub_edges ≤ 5·k_a`, and
//! `edges_divided ≤ k_a`), and the total sub-edge count over all pairs
//! stays linear in the map's edge count. The hook must never change a
//! relation bit: plain and hooked results are compared exactly.

use cardir_core::{compute_cdr, compute_cdr_hooked, CountingHook};
use cardir_engine::{BatchEngine, RegionCache};
use cardir_geometry::{BoundingBox, Point, Region};
use cardir_workloads::{random_map, SplitMix64};

fn jittered_map(n: usize, seed: u64) -> Vec<Region> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let extent = BoundingBox::new(Point::new(0.0, 0.0), Point::new(600.0, 400.0));
    random_map(&mut rng, n, extent).into_iter().map(|m| m.region).collect()
}

#[test]
fn hook_counts_satisfy_theorem_1_on_jittered_grid() {
    let regions = jittered_map(30, 41);
    let map_edges: usize = regions.iter().map(Region::edge_count).sum();
    let mut total_sub_edges = 0usize;
    let mut total_scanned = 0usize;
    for (i, a) in regions.iter().enumerate() {
        for (j, b) in regions.iter().enumerate() {
            if i == j {
                continue;
            }
            let k_a = a.edge_count();
            let mut hook = CountingHook::new();
            let hooked = compute_cdr_hooked(a, b, &mut hook);
            let plain = compute_cdr(a, b);
            assert_eq!(hooked, plain, "hook altered pair ({i}, {j})");
            assert_eq!(hook.edges_scanned, k_a, "pair ({i}, {j}): every edge scanned once");
            assert!(
                hook.edges_divided <= k_a,
                "pair ({i}, {j}): only input edges can divide"
            );
            assert!(
                hook.sub_edges <= 5 * k_a,
                "pair ({i}, {j}): an edge crosses each grid line at most once \
                 ({} sub-edges from {k_a} edges)",
                hook.sub_edges
            );
            assert!(hook.sub_edges >= k_a, "dividing never loses an edge");
            assert!(
                hook.tiles_touched() >= plain.tiles().count() - usize::from(hook.b_center_hits > 0),
                "pair ({i}, {j}): every relation tile except a centre-test B \
                 must come from a sub-edge"
            );
            total_sub_edges += hook.sub_edges;
            total_scanned += hook.edges_scanned;
        }
    }
    // Across all (n − 1) computations per primary, totals stay linear in
    // the map's edge count — Theorem 1 applied pairwise.
    let n = regions.len();
    assert_eq!(total_scanned, (n - 1) * map_edges);
    assert!(
        total_sub_edges <= 5 * (n - 1) * map_edges,
        "total sub-edges {total_sub_edges} exceed the linear bound"
    );
}

#[test]
fn disabled_hook_is_bit_identical_to_plain() {
    // The generic entry point with the default NoopHook must agree with
    // compute_cdr exactly — the hook layer only observes.
    let regions = jittered_map(15, 99);
    for a in &regions {
        for b in &regions {
            let mut noop = cardir_core::NoopHook;
            assert_eq!(compute_cdr_hooked(a, b, &mut noop), compute_cdr(a, b));
        }
    }
}

#[test]
fn engine_stats_are_internally_consistent() {
    let regions = jittered_map(40, 7);
    let cache = RegionCache::build(&regions);
    let result = BatchEngine::new().with_threads(4).with_detailed_metrics(true).compute_all(&cache);
    let stats = result.stats;
    assert_eq!(stats.pairs, regions.len() * (regions.len() - 1));
    assert_eq!(stats.prefilter_hits + stats.exact_pairs, stats.pairs);
    assert!(stats.edges_scanned > 0, "some pairs must take the exact path");
    // Each reference's own box touches all four of its grid lines, so the
    // four line searches see at least four candidates per reference.
    assert!(stats.rtree_candidates >= 4 * regions.len());
    let m = &result.metrics;
    assert_eq!(m.stats, stats);
    assert_eq!(m.per_thread_pairs.iter().sum::<usize>(), stats.pairs);
    let balance = m.worker_balance();
    assert!(balance > 0.0 && balance <= 1.0, "balance {balance}");
    let chunks = m.chunk_durations_ns.as_ref().expect("detailed metrics were requested");
    assert_eq!(chunks.count as usize, stats.pairs.div_ceil(256), "one sample per chunk");

    // The exact-path edge tally must equal a replay of the engine's own
    // decisions: k_primary per exact qualitative computation.
    let replay: usize = result
        .pairs
        .iter()
        .filter(|p| !p.via_prefilter)
        .map(|p| cache.edge_count(p.primary))
        .sum();
    assert_eq!(stats.edges_scanned, replay);
}

#[test]
fn engine_metrics_export_feeds_the_registry() {
    let regions = jittered_map(20, 3);
    let cache = RegionCache::build(&regions);
    let result = BatchEngine::new().with_threads(2).compute_all(&cache);
    let registry = cardir_telemetry::Registry::new();
    result.metrics.export(&registry);
    let snap = registry.snapshot();
    assert_eq!(snap.counter("engine.pairs"), Some(result.stats.pairs as u64));
    assert_eq!(snap.counter("engine.runs"), Some(1));
    assert!(snap.histogram("engine.exact_pass_ns").is_some());
    let report = cardir_telemetry::Report::render(&snap);
    assert!(report.contains("engine.pairs"), "report must list the counter:\n{report}");
}
