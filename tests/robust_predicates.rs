//! Cross-layer regression suite for the robust predicate rewrite:
//! orientation, containment, and crossing decisions must stay exact at
//! 1–4 ulp separations all the way up the stack — `compute_cdr` tile
//! assignment, the B-tile containment test, the batch engine, and the
//! clipping baseline must all agree on geometry nudged by single ulps
//! around shared lines and vertices.

use cardir_core::{clipping_cdr, compute_cdr};
use cardir_geometry::robust::on_segment;
use cardir_geometry::{orient2d_sign, Point, Region, Sign};

fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Region {
    Region::from_coords([(x0, y0), (x1, y0), (x1, y1), (x0, y1)]).unwrap()
}

/// The reference box `[0, 4]²` used throughout.
fn b() -> Region {
    rect(0.0, 0.0, 4.0, 4.0)
}

/// The deterministic seeded ulp-adversarial sweep, cross-validated
/// against the clipping baseline (and the engine, the area matrix, and
/// the persistence layer) by the differential fuzz harness. CI runs the
/// same family for ≥ 200 seeds; this pins a block of it into `cargo
/// test`.
#[test]
fn ulp_adversarial_sweep_agrees_with_clipping_baseline() {
    let report = cardir_fuzz::run_ulp(1, 120);
    assert_eq!(report.iterations, 120);
    assert!(
        report.divergences.is_empty(),
        "ulp sweep diverged:\n{}",
        report.divergences.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    );
}

/// Tile assignment discriminates single ulps around a grid line: a
/// primary whose west edge sits one ulp west of the reference's east
/// line occupies the same tiles as one clearly straddling it; one ulp
/// east, the same tiles as one clearly beyond it; exactly on the line,
/// contact only (no `B`).
#[test]
fn tile_assignment_is_sharp_to_one_ulp_at_a_grid_line() {
    let reference = b();
    let straddling = compute_cdr(&rect(3.5, 1.0, 6.0, 3.0), &reference);
    let beyond = compute_cdr(&rect(4.5, 1.0, 6.0, 3.0), &reference);
    assert_ne!(straddling, beyond);

    let just_west = compute_cdr(&rect(4.0f64.next_down(), 1.0, 6.0, 3.0), &reference);
    assert_eq!(just_west, straddling, "1 ulp west of the line must straddle");
    let just_east = compute_cdr(&rect(4.0f64.next_up(), 1.0, 6.0, 3.0), &reference);
    assert_eq!(just_east, beyond, "1 ulp east of the line must not straddle");
    let exactly_on = compute_cdr(&rect(4.0, 1.0, 6.0, 3.0), &reference);
    assert_eq!(exactly_on, beyond, "edge contact with the line adds no tile");
}

/// The same discrimination at `2^±40` magnitudes: scaling by exact
/// powers of two preserves every ulp relationship, and no tolerance may
/// reappear at either extreme.
#[test]
fn tile_assignment_stays_sharp_at_extreme_magnitudes() {
    for exp in [-40, 40] {
        let s = 2f64.powi(exp);
        let reference = rect(0.0, 0.0, 4.0 * s, 4.0 * s);
        let line = 4.0 * s;
        let straddling = compute_cdr(&rect(3.5 * s, s, 6.0 * s, 3.0 * s), &reference);
        let beyond = compute_cdr(&rect(4.5 * s, s, 6.0 * s, 3.0 * s), &reference);
        assert_ne!(straddling, beyond);
        assert_eq!(
            compute_cdr(&rect(line.next_down(), s, 6.0 * s, 3.0 * s), &reference),
            straddling,
            "exp = {exp}"
        );
        assert_eq!(
            compute_cdr(&rect(line.next_up(), s, 6.0 * s, 3.0 * s), &reference),
            beyond,
            "exp = {exp}"
        );
    }
}

/// The `B`-tile containment test (Fig. 5's "center of mbb(b) in p")
/// goes through the exact parity predicate: a primary covering the
/// whole central tile reports `B` even though none of its edges enter
/// the tile, at every magnitude.
#[test]
fn b_center_containment_is_exact_across_magnitudes() {
    for exp in [-40, 0, 40] {
        let s = 2f64.powi(exp);
        let reference = rect(0.0, 0.0, 4.0 * s, 4.0 * s);
        let cover = rect(-s, -s, 5.0 * s, 5.0 * s);
        let relation = compute_cdr(&cover, &reference);
        let clipped = clipping_cdr(&cover, &reference);
        assert_eq!(relation, clipped.relation, "exp = {exp}");
        assert_eq!(relation.to_string().matches('B').count(), 1, "exp = {exp}: {relation}");
    }
}

/// Orientation decisions survive coordinates a single ulp apart on a
/// huge-magnitude diagonal — the regime where the naive determinant
/// rounds to zero or the wrong sign and the exact fallback must decide.
#[test]
fn orientation_is_exact_across_magnitudes() {
    for exp in [-40, 0, 17, 40] {
        let s = 2f64.powi(exp);
        let a = Point::new(0.0, 0.0);
        let c = Point::new(3.0 * s, 3.0 * s);
        let mid = Point::new(1.5 * s, 1.5 * s);
        assert_eq!(orient2d_sign(a, c, mid), Sign::Zero, "exp = {exp}");
        assert_eq!(
            orient2d_sign(a, c, Point::new(mid.x, mid.y.next_up())),
            Sign::Positive,
            "exp = {exp}"
        );
        assert_eq!(
            orient2d_sign(a, c, Point::new(mid.x, mid.y.next_down())),
            Sign::Negative,
            "exp = {exp}"
        );
        assert!(on_segment(a, c, mid));
        assert!(!on_segment(a, c, Point::new(mid.x, mid.y.next_up())));
    }
}
