//! Experiment A4 (DESIGN.md): the segmentation substrate feeding the
//! CARDIRECT pipeline, checked over a fixed seeded case list.

use cardir::cardirect::{from_xml, to_xml, Configuration};
use cardir::core::compute_cdr;
use cardir::segment::{random_blobs, Connectivity, Raster};
use cardir::workloads::SplitMix64;

/// Region extraction preserves areas and produces valid regions for
/// every label of a random segmented image.
#[test]
fn extraction_preserves_areas() {
    let mut rng = SplitMix64::seed_from_u64(401);
    for case in 0..48 {
        let w = rng.random_range(8usize..48);
        let h = rng.random_range(8usize..32);
        let n_labels = rng.random_range(1u32..8);
        let growth = rng.random_range(5usize..80);
        let raster = random_blobs(&mut rng, w, h, n_labels, growth);
        for label in raster.labels() {
            let region = raster.extract_region(label).expect("label present");
            assert_eq!(region.area(), raster.count(label) as f64, "case {case}, label {label}");
            // Every polygon is a valid simple rectangle tile.
            for p in region.polygons() {
                assert!(p.is_simple(), "case {case}");
                assert_eq!(p.len(), 4, "case {case}");
            }
            // The extracted region's mbb stays inside the raster extent.
            let mbb = region.mbb();
            assert!(mbb.min.x >= 0.0 && mbb.min.y >= 0.0, "case {case}");
            assert!(mbb.max.x <= w as f64 && mbb.max.y <= h as f64, "case {case}");
        }
    }
}

/// Component analysis partitions the non-background cells.
#[test]
fn components_partition_cells() {
    let mut rng = SplitMix64::seed_from_u64(402);
    for case in 0..48 {
        let raster = random_blobs(&mut rng, 24, 24, 5, 40);
        let comps = raster.components(Connectivity::Four);
        let total: usize = comps.iter().map(|c| c.area()).sum();
        let nonbg: usize = raster.labels().iter().map(|&l| raster.count(l)).sum();
        assert_eq!(total, nonbg, "case {case}");
        // Cells are globally unique across components.
        let mut seen = std::collections::HashSet::new();
        for c in &comps {
            for cell in &c.cells {
                assert!(seen.insert(*cell), "case {case}: cell {cell:?} in two components");
            }
        }
    }
}

/// Segmented configurations survive the XML round trip.
#[test]
fn segmented_configuration_round_trips() {
    let mut rng = SplitMix64::seed_from_u64(403);
    for case in 0..48 {
        let raster = random_blobs(&mut rng, 20, 16, 4, 30);
        let mut config = Configuration::new("seg", "img.png");
        for label in raster.labels() {
            let region = raster.extract_region(label).expect("present");
            config
                .add_region(format!("seg{label}"), format!("segment {label}"), "blue", region)
                .expect("unique");
        }
        if config.is_empty() {
            continue;
        }
        config.compute_all_relations();
        let back = from_xml(&to_xml(&config)).expect("own export re-imports");
        assert_eq!(back.len(), config.len(), "case {case}");
        assert_eq!(back.relations(), config.relations(), "case {case}");
    }
}

/// Raster-level relations agree with the on-grid intuition: a label
/// translated strictly north-east of another computes NE.
#[test]
fn crafted_raster_relations() {
    let raster = Raster::from_text(
        "......22
         ......22
         ........
         11......
         11......",
    )
    .unwrap();
    let one = raster.extract_region(1).unwrap();
    let two = raster.extract_region(2).unwrap();
    assert_eq!(compute_cdr(&two, &one).to_string(), "NE");
    assert_eq!(compute_cdr(&one, &two).to_string(), "SW");
}

/// The display/parse pair of rasters round-trips.
#[test]
fn raster_text_round_trip() {
    let text = "12.\n.3a\nb..";
    let raster = Raster::from_text(text).unwrap();
    assert_eq!(raster.to_string(), text);
}
