//! Experiment A4 (DESIGN.md): the segmentation substrate feeding the
//! CARDIRECT pipeline, property-tested.

use cardir::cardirect::{from_xml, to_xml, Configuration};
use cardir::core::compute_cdr;
use cardir::segment::{random_blobs, Connectivity, Raster};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Region extraction preserves areas and produces valid regions for
    /// every label of a random segmented image.
    #[test]
    fn extraction_preserves_areas(seed in 0u64..u64::MAX,
                                  w in 8usize..48, h in 8usize..32,
                                  n_labels in 1u32..8, growth in 5usize..80) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let raster = random_blobs(&mut rng, w, h, n_labels, growth);
        for label in raster.labels() {
            let region = raster.extract_region(label).expect("label present");
            prop_assert_eq!(region.area(), raster.count(label) as f64);
            // Every polygon is a valid simple rectangle tile.
            for p in region.polygons() {
                prop_assert!(p.is_simple());
                prop_assert_eq!(p.len(), 4);
            }
            // The extracted region's mbb stays inside the raster extent.
            let mbb = region.mbb();
            prop_assert!(mbb.min.x >= 0.0 && mbb.min.y >= 0.0);
            prop_assert!(mbb.max.x <= w as f64 && mbb.max.y <= h as f64);
        }
    }

    /// Component analysis partitions the non-background cells.
    #[test]
    fn components_partition_cells(seed in 0u64..u64::MAX) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let raster = random_blobs(&mut rng, 24, 24, 5, 40);
        let comps = raster.components(Connectivity::Four);
        let total: usize = comps.iter().map(|c| c.area()).sum();
        let nonbg: usize = raster.labels().iter().map(|&l| raster.count(l)).sum();
        prop_assert_eq!(total, nonbg);
        // Cells are globally unique across components.
        let mut seen = std::collections::HashSet::new();
        for c in &comps {
            for cell in &c.cells {
                prop_assert!(seen.insert(*cell), "cell {:?} in two components", cell);
            }
        }
    }

    /// Segmented configurations survive the XML round trip.
    #[test]
    fn segmented_configuration_round_trips(seed in 0u64..u64::MAX) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let raster = random_blobs(&mut rng, 20, 16, 4, 30);
        let mut config = Configuration::new("seg", "img.png");
        for label in raster.labels() {
            let region = raster.extract_region(label).expect("present");
            config.add_region(format!("seg{label}"), format!("segment {label}"),
                              "blue", region).expect("unique");
        }
        prop_assume!(!config.is_empty());
        config.compute_all_relations();
        let back = from_xml(&to_xml(&config)).expect("own export re-imports");
        prop_assert_eq!(back.len(), config.len());
        prop_assert_eq!(back.relations(), config.relations());
    }
}

/// Raster-level relations agree with the on-grid intuition: a label
/// translated strictly north-east of another computes NE.
#[test]
fn crafted_raster_relations() {
    let raster = Raster::from_text(
        "......22
         ......22
         ........
         11......
         11......",
    )
    .unwrap();
    let one = raster.extract_region(1).unwrap();
    let two = raster.extract_region(2).unwrap();
    assert_eq!(compute_cdr(&two, &one).to_string(), "NE");
    assert_eq!(compute_cdr(&one, &two).to_string(), "SW");
}

/// The display/parse pair of rasters round-trips.
#[test]
fn raster_text_round_trip() {
    let text = "12.\n.3a\nb..";
    let raster = Raster::from_text(text).unwrap();
    assert_eq!(raster.to_string(), text);
}
