//! Differential lockdown of the fused quantitative pipeline: the single
//! SoA sweep that now computes a pair's relation *and* tile areas must be
//! **bit-identical** — relations equal and percentage matrices equal as
//! raw f64s — to the legacy two-pass per-pair path
//! (`compute_cdr_with_mbb` then `tile_areas_with_mbb`, which re-flattens
//! and re-divides every primary edge twice) *and* to the fully naive
//! entry points, across threads {1, 2, 8} × prefilter on/off × both
//! enumeration strategies (all-pairs and the spatial join).
//!
//! It also pins the `fused_pairs` accounting: every exact computation —
//! and only exact computations — runs over the fused SoA kernels, with
//! the two strategies agreeing on the count.

use cardir::core::{
    cdr_areas_from_soa, cdr_from_soa, compute_cdr, compute_cdr_pct, compute_cdr_with_mbb,
    tile_areas_with_mbb, CardinalRelation, PercentageMatrix,
};
use cardir::engine::{BatchEngine, EngineMode, RegionCache, RunPolicy};
use cardir::geometry::{BoundingBox, Point, Region};
use cardir::workloads::{archipelago, random_map, RegionSpec, SplitMix64};

fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Region {
    Region::from_coords([(x0, y0), (x1, y0), (x1, y1), (x0, y1)]).unwrap()
}

/// Three independent computations of every ordered pair, all of which the
/// engine output is checked against:
///
/// * `naive` — `compute_cdr` / `compute_cdr_pct`, recomputing `mbb(b)`
///   from scratch (the paper's algorithms verbatim);
/// * `legacy` — the retired engine inner loop: cached MBB, then two
///   separate sweeps over `Region` edge iterators;
/// * `fused` — the SoA kernel called directly on the cache's edge store.
struct Oracle {
    relations: Vec<CardinalRelation>,
    percentages: Vec<PercentageMatrix>,
}

fn oracle(regions: &[Region], cache: &RegionCache<'_>) -> Oracle {
    let mut relations = Vec::new();
    let mut percentages = Vec::new();
    for (i, a) in regions.iter().enumerate() {
        for (j, b) in regions.iter().enumerate() {
            if i == j {
                continue;
            }
            let mbb = cache.mbb(j);

            let naive_rel = compute_cdr(a, b);
            let naive_pct = compute_cdr_pct(a, b);

            let legacy_rel = compute_cdr_with_mbb(a, mbb);
            let legacy_pct = tile_areas_with_mbb(a, mbb).percentages();

            let soa = cache.soa(i);
            let fused_rel_only = cdr_from_soa(&soa, mbb);
            let (fused_rel, fused_areas) = cdr_areas_from_soa(&soa, mbb);
            let fused_pct = fused_areas.percentages();

            assert_eq!(naive_rel, legacy_rel, "pair ({i}, {j}): naive vs legacy relation");
            assert_eq!(legacy_rel, fused_rel, "pair ({i}, {j}): legacy vs fused relation");
            assert_eq!(fused_rel, fused_rel_only, "pair ({i}, {j}): fused modes disagree");
            assert_eq!(naive_pct, legacy_pct, "pair ({i}, {j}): naive vs legacy percentages");
            assert_eq!(legacy_pct, fused_pct, "pair ({i}, {j}): legacy vs fused percentages");

            relations.push(fused_rel);
            percentages.push(fused_pct);
        }
    }
    Oracle { relations, percentages }
}

/// Runs both enumeration strategies over the triple oracle at every
/// thread count × prefilter setting and checks the outputs bit for bit,
/// plus the `fused_pairs == exact_pairs` accounting invariant.
fn assert_fused_pipeline_cross_validates(regions: &[Region], family: &str) {
    let cache = RegionCache::build(regions);
    let truth = oracle(regions, &cache);

    for threads in [1usize, 2, 8] {
        for prefilter in [true, false] {
            let label = format!("{family}, {threads} threads, prefilter={prefilter}");
            let engine = BatchEngine::new()
                .with_mode(EngineMode::Quantitative)
                .with_threads(threads)
                .with_prefilter(prefilter);

            let all = engine.compute_all(&cache);
            assert_eq!(all.pairs.len(), truth.relations.len(), "{label}");
            for (k, got) in all.pairs.iter().enumerate() {
                assert_eq!(got.relation, truth.relations[k], "{label}, pair #{k}");
                assert_eq!(
                    got.percentages.as_ref(),
                    Some(&truth.percentages[k]),
                    "{label}, pair #{k}: percentage matrices must be bit-identical"
                );
            }
            // Every exact computation runs over the fused SoA kernels —
            // including the quantitative N-tile fallback — and nothing
            // else does.
            assert_eq!(all.stats.fused_pairs, all.stats.exact_pairs, "{label}: accounting");
            if !prefilter {
                assert_eq!(all.stats.fused_pairs, all.stats.pairs, "{label}: accounting");
            }

            let joined = engine.run_join(&cache, &RunPolicy::default());
            let out = joined.materialize(&cache);
            assert_eq!(out.pairs.len(), all.pairs.len(), "{label} (join)");
            for (k, got) in out.pairs.iter().enumerate() {
                let got = got.ok().unwrap_or_else(|| panic!("{label}: join pair #{k} failed"));
                assert_eq!(got.relation, truth.relations[k], "{label} (join), pair #{k}");
                assert_eq!(
                    got.percentages.as_ref(),
                    Some(&truth.percentages[k]),
                    "{label} (join), pair #{k}"
                );
            }
            assert_eq!(
                out.stats.fused_pairs, all.stats.fused_pairs,
                "{label}: the two strategies must fuse the same pair set"
            );
        }
    }
}

/// Family 1: jittered-grid star maps at several sizes — mostly disjoint
/// boxes, so the prefilter decides most pairs and the N-tile fallback
/// fires for vertically stacked neighbours.
#[test]
fn grid_maps_fused_bit_identical() {
    let mut rng = SplitMix64::seed_from_u64(801);
    for n in [6usize, 19, 36] {
        let extent = BoundingBox::new(Point::new(0.0, 0.0), Point::new(600.0, 450.0));
        let regions: Vec<Region> =
            random_map(&mut rng, n, extent).into_iter().map(|m| m.region).collect();
        assert_fused_pipeline_cross_validates(&regions, &format!("grid map n={n}"));
    }
}

/// Family 2: composite archipelagos whose members interleave — the exact
/// path dominates, so nearly every pair exercises the fused sweep.
#[test]
fn archipelagos_fused_bit_identical() {
    let mut rng = SplitMix64::seed_from_u64(802);
    let regions: Vec<Region> = (0..7)
        .map(|i| {
            let spec = RegionSpec {
                polygons: 1 + i % 4,
                vertices_per_polygon: 8,
                center: Point::new((i % 3) as f64 * 9.0, (i / 3) as f64 * 7.0),
                spread: 12.0,
            };
            archipelago(&mut rng, spec)
        })
        .collect();
    assert_fused_pipeline_cross_validates(&regions, "archipelago");
}

/// Family 3: the Ancient-Greece scenario — real composite coastlines with
/// touching boxes, grid-line contacts, and B/N-boundary area splits.
#[test]
fn greece_scenario_fused_bit_identical() {
    let regions: Vec<Region> =
        cardir::workloads::greece_scenario().into_iter().map(|r| r.region).collect();
    assert!(regions.len() >= 5, "scenario should exercise a real pair matrix");
    assert_fused_pipeline_cross_validates(&regions, "greece scenario");
}

/// Family 4: MBB boundary contact and vertical stacking — exact
/// configurations where the prefilter must decline, plus strictly-north
/// primaries that force the quantitative N-tile fallback (the one decided
/// pair class that still runs a fused area sweep).
#[test]
fn boundary_contact_and_north_stack_fused_bit_identical() {
    let regions = vec![
        rect(0.0, 0.0, 4.0, 4.0),   // the reference square
        rect(1.0, 6.0, 3.0, 8.0),   // strictly north: N-tile fallback
        rect(0.5, 9.0, 3.5, 11.0),  // strictly north of both
        rect(4.0, 0.0, 8.0, 4.0),   // shares the full east edge
        rect(0.0, 4.0, 4.0, 8.0),   // shares the full north edge
        rect(4.0, 4.0, 8.0, 8.0),   // touches only the NE corner
        rect(2.0, 2.0, 6.0, 6.0),   // straddles the NE corner
        rect(0.0, 0.0, 4.0, 4.0),   // exact duplicate of the reference
    ];
    assert_fused_pipeline_cross_validates(&regions, "boundary contact + north stack");
}
