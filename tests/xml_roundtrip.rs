//! Experiment E9 (DESIGN.md): XML persistence per the paper's DTD —
//! export ≡ re-import, for the Greece scenario and seeded random
//! configurations.

use cardir::cardirect::{from_xml, to_xml, Configuration};
use cardir::geometry::{BoundingBox, Point};
use cardir::workloads::{greece, maps::random_map, SplitMix64};

fn greece_config() -> Configuration {
    let mut config = Configuration::new("Ancient Greece", "peloponnesian_war.png");
    for r in greece::scenario() {
        config
            .add_region(r.name.to_lowercase(), r.name, r.alliance.color(), r.region)
            .unwrap();
    }
    config
}

#[test]
fn greece_round_trip_exact() {
    let mut config = greece_config();
    config.compute_all_relations();
    let xml = to_xml(&config);
    let back = from_xml(&xml).unwrap();
    assert_eq!(back.name, config.name);
    assert_eq!(back.file, config.file);
    assert_eq!(back.len(), config.len());
    for (a, b) in back.regions().iter().zip(config.regions()) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.name, b.name);
        assert_eq!(a.color, b.color);
        assert_eq!(a.region, b.region, "geometry of {} must survive exactly", a.id);
    }
    assert_eq!(back.relations(), config.relations());
    // Idempotence: exporting the re-import gives byte-identical XML.
    assert_eq!(to_xml(&back), xml);
}

#[test]
fn relations_survive_and_remain_correct() {
    let mut config = greece_config();
    config.compute_all_relations();
    let back = from_xml(&to_xml(&config)).unwrap();
    // The stored relation must equal what recomputation yields.
    for rel in back.relations() {
        let recomputed = cardir::core::compute_cdr(
            &back.region(&rel.primary).unwrap().region,
            &back.region(&rel.reference).unwrap().region,
        );
        assert_eq!(rel.relation, recomputed, "{} vs {}", rel.primary, rel.reference);
    }
}

/// Random generated maps round-trip exactly, including awkward f64
/// coordinates.
#[test]
fn random_configs_round_trip() {
    let mut rng = SplitMix64::seed_from_u64(501);
    for case in 0..32 {
        let n = rng.random_range(1usize..24);
        let extent = BoundingBox::new(Point::new(-500.0, -400.0), Point::new(500.0, 400.0));
        let map = random_map(&mut rng, n, extent);
        let mut config = Configuration::new(format!("map-{case}"), "gen.png");
        for r in &map {
            config
                .add_region(r.id.clone(), format!("region {}", r.id), r.color, r.region.clone())
                .unwrap();
        }
        config.compute_all_relations();
        let xml = to_xml(&config);
        let back = from_xml(&xml).unwrap();
        assert_eq!(back.len(), config.len(), "case {case}");
        for (a, b) in back.regions().iter().zip(config.regions()) {
            assert_eq!(&a.region, &b.region, "case {case}");
        }
        assert_eq!(back.relations(), config.relations(), "case {case}");
    }
}

#[test]
fn hostile_names_are_escaped() {
    let mut config = Configuration::new(r#"<war> & "peace""#, "a<b>.png");
    config
        .add_region(
            "r1",
            "Land of <angle> & 'quotes'",
            "dark\"red",
            cardir::geometry::Region::from_coords([(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)]).unwrap(),
        )
        .unwrap();
    let xml = to_xml(&config);
    let back = from_xml(&xml).unwrap();
    assert_eq!(back.name, config.name);
    assert_eq!(back.file, config.file);
    assert_eq!(back.regions()[0].name, config.regions()[0].name);
    assert_eq!(back.regions()[0].color, config.regions()[0].color);
}
