//! Experiment E10 (DESIGN.md): the reasoning layer — inverses, pairs,
//! composition bounds, consistency — cross-checked against concrete
//! geometry from the computation algorithms.

use cardir::core::{compute_cdr, CardinalRelation};
use cardir::reasoning::{inverse, realizable_pairs, weak_compose, Network, Outcome};
use cardir::workloads::greece;

/// Every geometric pair observed in the Greece scenario is predicted
/// realizable by the exact pair table, and each observed inverse is a
/// disjunct of `inv`.
#[test]
fn e10_greece_pairs_are_realizable() {
    let regions = greece::scenario();
    let table = realizable_pairs();
    for a in &regions {
        for b in &regions {
            if a.name == b.name {
                continue;
            }
            let r_ab = compute_cdr(&a.region, &b.region);
            let r_ba = compute_cdr(&b.region, &a.region);
            assert!(
                table.realizable(r_ab, r_ba),
                "({}, {}) gave unpredicted pair ({r_ab}, {r_ba})",
                a.name,
                b.name
            );
            assert!(inverse(r_ab).contains(r_ba));
            assert!(inverse(r_ba).contains(r_ab));
        }
    }
}

/// The paper's Section 2 narrative: the position of two regions is fully
/// characterised by the pair (R1, R2) with each a disjunct of the other's
/// inverse — conditions (c) and (d).
#[test]
fn e10_pair_characterization_conditions() {
    for r1 in CardinalRelation::all().filter(|r| r.tile_count() <= 2) {
        for r2 in inverse(r1).iter() {
            assert!(inverse(r2).contains(r1), "({r1}, {r2})");
        }
    }
}

/// Single-tile compositions have exact bounds, and chaining agrees with
/// geometry: a witness for (R1, R2) composed through b yields an observed
/// R3 inside the lower bound.
#[test]
fn e10_composition_agrees_with_witnesses() {
    for (r1, r2) in [("SW", "SW"), ("N", "S"), ("W", "W"), ("B", "NE"), ("S", "E")] {
        let r1: CardinalRelation = r1.parse().unwrap();
        let r2: CardinalRelation = r2.parse().unwrap();
        let bounds = weak_compose(r1, r2);
        assert!(bounds.is_exact(), "{r1} ∘ {r2} gap {}", bounds.gap());
        // Construct a witness for {a R1 b, b R2 c} and check the observed
        // a-to-c relation is in the bound.
        let mut net = Network::new();
        for v in ["a", "b", "c"] {
            net.add_variable(v).unwrap();
        }
        net.add_constraint("a", r1, "b").unwrap();
        net.add_constraint("b", r2, "c").unwrap();
        match net.solve() {
            Outcome::Consistent(sol) => {
                let observed = compute_cdr(sol.region("a").unwrap(), sol.region("c").unwrap());
                assert!(
                    bounds.lower.contains(observed),
                    "observed {observed} outside {r1} ∘ {r2} = {}",
                    bounds.lower
                );
            }
            other => panic!("{r1}/{r2}: {other:?}"),
        }
    }
}

/// Networks built from actual scenario relations are consistent (they
/// have the scenario itself as a model) and the solver finds a witness.
#[test]
fn e10_scenario_network_is_consistent() {
    let regions = greece::scenario();
    let mut net = Network::new();
    for r in &regions {
        net.add_variable(r.name).unwrap();
    }
    // A spanning set of observed constraints (full O(n²) would also work
    // but keep the test fast).
    for pair in regions.windows(2) {
        let rel = compute_cdr(&pair[0].region, &pair[1].region);
        net.add_constraint(pair[0].name, rel, pair[1].name).unwrap();
    }
    let outcome = net.solve();
    assert!(outcome.is_consistent(), "{outcome:?}");
}

/// Larger inconsistent networks are refuted.
#[test]
fn e10_refutes_global_contradictions() {
    let mut net = Network::new();
    for v in ["a", "b", "c", "d"] {
        net.add_variable(v).unwrap();
    }
    // A chain of strict northward placements closed into a cycle.
    net.add_constraint("a", "N".parse().unwrap(), "b").unwrap();
    net.add_constraint("b", "N".parse().unwrap(), "c").unwrap();
    net.add_constraint("c", "N".parse().unwrap(), "d").unwrap();
    net.add_constraint("d", "N".parse().unwrap(), "a").unwrap();
    assert!(net.solve().is_inconsistent());
}

/// Inverse cardinalities for all nine single-tile relations: corners pin
/// the inverse to the single opposite corner; edges and B admit families.
#[test]
fn e10_single_tile_inverse_sizes() {
    let size = |s: &str| inverse(s.parse().unwrap()).len();
    assert_eq!(size("SW"), 1);
    assert_eq!(size("NE"), 1);
    assert_eq!(size("NW"), 1);
    assert_eq!(size("SE"), 1);
    assert_eq!(size("S"), 5); // N family: N, NW:N, N:NE, NW:N:NE, NW:NE
    assert_eq!(size("N"), 5);
    assert_eq!(size("W"), 5);
    assert_eq!(size("E"), 5);
    // B admits every relation whose span covers the inner box — a large
    // family.
    assert!(size("B") > 5);
}
