//! Differential lockdown of the spatial join: `run_join` must be
//! **bit-identical** to `run_all` and to the naive per-pair loop —
//! relations equal and percentage matrices equal as raw f64s — at every
//! thread count, with the prefilter on and off, in both modes, on every
//! adversarial scenario family, and its partition must match the
//! per-pair `decided_tile` oracle exactly.
//!
//! The policy tests pin the join's documented fault semantics: the
//! `RunPolicy` (deadline, cancellation, panic isolation, failpoints)
//! governs the exact subset only — mask-emitted pairs are proven by the
//! boxes, cost `O(1)`, and are never work items.
//!
//! Failpoint-arming tests hold `SERIAL` (failpoints are process-global);
//! this file is its own test binary, so no other suite can race it.

use cardir::core::{compute_cdr, compute_cdr_pct, CardinalRelation};
use cardir::engine::{
    decided_tile, interacting_pairs, BatchEngine, CancelToken, CompletionStatus, EngineMode,
    PairOutcome, RegionCache, RunPolicy,
};
use cardir::faults::{self, sites, FaultAction, Trigger};
use cardir::geometry::{BoundingBox, Point, Region};
use cardir::workloads::{random_map, SplitMix64};
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Region {
    Region::from_coords([(x0, y0), (x1, y0), (x1, y1), (x0, y1)]).unwrap()
}

/// The ordered pairs the boxes alone cannot decide — the ground truth
/// the sweep's interacting set must reproduce.
fn undecided_oracle(cache: &RegionCache<'_>) -> Vec<(u32, u32)> {
    let n = cache.len();
    let mut out = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j && decided_tile(cache.mbb(i), cache.mbb(j)).is_none() {
                out.push((i as u32, j as u32));
            }
        }
    }
    out
}

/// The full differential: the sweep partition matches the per-pair
/// oracle, and the materialized join is bit-identical to `run_all` and
/// to the naive double loop for every thread count × prefilter × mode.
fn assert_join_cross_validates(regions: &[Region], label: &str) {
    let cache = RegionCache::build(regions);
    let n = regions.len();
    let total = if n < 2 { 0 } else { n * (n - 1) };

    let (interacting, _) = interacting_pairs(&cache);
    assert_eq!(interacting, undecided_oracle(&cache), "{label}: partition oracle");

    for mode in [EngineMode::Qualitative, EngineMode::Quantitative] {
        let mut naive = Vec::new();
        for (i, a) in regions.iter().enumerate() {
            for (j, b) in regions.iter().enumerate() {
                if i != j {
                    let pct = (mode == EngineMode::Quantitative).then(|| compute_cdr_pct(a, b));
                    naive.push((i, j, compute_cdr(a, b), pct));
                }
            }
        }
        for threads in [1usize, 2, 8] {
            for prefilter in [true, false] {
                let sub = format!("{label}, {mode:?}, {threads} threads, prefilter={prefilter}");
                let engine = BatchEngine::new()
                    .with_mode(mode)
                    .with_threads(threads)
                    .with_prefilter(prefilter);
                let all = engine.run_all(&cache, &RunPolicy::default());
                let joined = engine.run_join(&cache, &RunPolicy::default());

                // Partition accounting closes before any materialization.
                assert_eq!(joined.total(), total, "{sub}");
                assert_eq!(joined.join.mask_emitted + joined.join.exact_pairs, total, "{sub}");
                assert_eq!(
                    joined.succeeded + joined.failed + joined.skipped,
                    total,
                    "{sub}: accounting must close"
                );
                assert_eq!(joined.interacting.len(), joined.join.exact_pairs, "{sub}");
                if prefilter {
                    assert_eq!(joined.join.exact_pairs, interacting.len(), "{sub}");
                } else {
                    assert_eq!(joined.join.mask_emitted, 0, "{sub}: nothing sound to emit");
                }

                let out = joined.materialize(&cache);
                assert_eq!(out.pairs, all.pairs, "{sub}: join ≡ run_all, bit for bit");
                assert_eq!(out.status, all.status, "{sub}");
                assert_eq!(
                    (out.succeeded, out.failed, out.skipped),
                    (all.succeeded, all.failed, all.skipped),
                    "{sub}"
                );
                // Every counter coincides except `threads` (the join's
                // exact pass is smaller, so it may use fewer workers).
                assert_eq!(out.stats.pairs, all.stats.pairs, "{sub}");
                assert_eq!(out.stats.prefilter_hits, all.stats.prefilter_hits, "{sub}");
                assert_eq!(out.stats.exact_pairs, all.stats.exact_pairs, "{sub}");
                assert_eq!(out.stats.edges_scanned, all.stats.edges_scanned, "{sub}");
                assert_eq!(out.stats.rtree_candidates, all.stats.rtree_candidates, "{sub}");

                assert_eq!(out.pairs.len(), naive.len(), "{sub}");
                for (got, (i, j, rel, pct)) in out.pairs.iter().zip(&naive) {
                    match got {
                        PairOutcome::Ok(pr) => {
                            assert_eq!((pr.primary, pr.reference), (*i, *j), "{sub}");
                            assert_eq!(pr.relation, *rel, "{sub}, pair ({i}, {j})");
                            assert_eq!(
                                pr.percentages, *pct,
                                "{sub}, pair ({i}, {j}): matrices must be bit-identical"
                            );
                        }
                        other => panic!("{sub}, pair ({i}, {j}): not computed: {other:?}"),
                    }
                }
            }
        }
    }
}

/// Every scenario family of the differential fuzzer — the six classic
/// degenerate-geometry families plus the ulp-adversarial one — passes
/// the full join differential.
#[test]
fn adversarial_families_cross_validate() {
    let mut seen = std::collections::BTreeMap::new();
    let mut seed = 0u64;
    while seen.len() < 7 {
        let scenario = cardir_fuzz::gen::generate(seed);
        seen.entry(scenario.family).or_insert(scenario);
        seed += 1;
        assert!(seed < 1_000, "some family never appeared");
    }
    for (family, scenario) in &seen {
        assert_join_cross_validates(&scenario.regions, family);
    }
}

/// The join-clusters fuzz family — heavy MBB overlap anchored to shared
/// grid lines, far satellites, `2^±40` magnitudes — passes the full
/// differential on a block of seeds.
#[test]
fn join_cluster_scenarios_cross_validate() {
    for seed in 0..8u64 {
        let scenario = cardir_fuzz::gen::generate_join(seed);
        assert_join_cross_validates(&scenario.regions, &format!("join-clusters seed {seed}"));
    }
}

/// Jittered-grid random maps at a couple of sizes (the bench workload in
/// miniature) pass the full differential.
#[test]
fn random_maps_cross_validate() {
    let mut rng = SplitMix64::seed_from_u64(71);
    for n in [6usize, 25] {
        let extent = BoundingBox::new(Point::new(0.0, 0.0), Point::new(500.0, 400.0));
        let regions: Vec<Region> =
            random_map(&mut rng, n, extent).into_iter().map(|m| m.region).collect();
        assert_join_cross_validates(&regions, &format!("random map n={n}"));
    }
}

/// Satellite audit of the box-vs-box mask fast path: every flavour of
/// MBB boundary contact — shared full edge, touching corner, a box
/// sitting *on* a grid line, duplicate boxes, a hairline sliver on the
/// boundary — must be routed to the exact pipeline (the mask declines),
/// while the strictly separated box is mask-emitted. Pinned pair by
/// pair, then cross-validated end to end.
#[test]
fn boundary_contact_pairs_stay_exact() {
    let regions = vec![
        rect(0.0, 0.0, 4.0, 4.0),       // 0: the reference square
        rect(4.0, 0.0, 8.0, 4.0),       // 1: shares the full east edge
        rect(4.0, 4.0, 8.0, 8.0),       // 2: touches only the NE corner
        rect(1.0, 4.0, 3.0, 4.5),       // 3: sits on the north line, inside its span
        rect(0.0, 0.0, 4.0, 4.0),       // 4: exact duplicate of the reference
        rect(1.0, 3.999, 3.0, 4.001),   // 5: hairline sliver straddling the north line
        rect(10.0, 10.0, 11.0, 11.0),   // 6: strictly inside NE — the only decided one
    ];
    let cache = RegionCache::build(&regions);
    let (interacting, _) = interacting_pairs(&cache);
    let has = |i: u32, j: u32| interacting.binary_search(&(i, j)).is_ok();

    // Every boundary-contact pair goes exact, in both directions.
    for &(i, j, why) in &[
        (0u32, 1u32, "shared full edge"),
        (0, 2, "corner touch"),
        (0, 3, "box on the north grid line"),
        (0, 4, "exact duplicate"),
        (0, 5, "sliver straddling the north line"),
        (1, 2, "shared corner at (8, 4)"),
    ] {
        assert!(has(i, j), "({i}, {j}) [{why}] must be routed exact");
        assert!(has(j, i), "({j}, {i}) [{why}, reversed] must be routed exact");
    }
    // The far box is decided against everything, both ways.
    for other in 0u32..6 {
        assert!(!has(6, other), "(6, {other}) is strictly separated: mask-emitted");
        assert!(!has(other, 6), "({other}, 6) is strictly separated: mask-emitted");
        // And what the mask emits is the geometric truth.
        let tile = decided_tile(cache.mbb(6), cache.mbb(other as usize))
            .expect("strictly separated boxes are decided");
        assert_eq!(
            CardinalRelation::single(tile),
            compute_cdr(&regions[6], &regions[other as usize]),
            "mask emission for (6, {other}) must match compute_cdr"
        );
    }

    assert_join_cross_validates(&regions, "boundary contact");
}

/// A pre-cancelled token stops the exact pass before it starts, but the
/// mask-emitted pairs — proven by the boxes during discovery — are still
/// reported, and materialisation keeps the partition visible: emitted
/// pairs `Ok`, exact pairs `Skipped`.
#[test]
fn pre_cancelled_join_still_emits_mask_pairs() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    faults::disarm_all();
    let regions = mixed_map();
    let cache = RegionCache::build(&regions);
    let total = regions.len() * (regions.len() - 1);

    let token = CancelToken::new();
    token.cancel();
    let joined = BatchEngine::new()
        .with_threads(2)
        .run_join(&cache, &RunPolicy::default().with_cancel(token));

    assert_eq!(joined.status, CompletionStatus::Cancelled);
    assert!(joined.join.mask_emitted > 0 && joined.join.exact_pairs > 0, "{:?}", joined.join);
    assert_eq!(joined.succeeded, joined.join.mask_emitted, "emission ignores the token");
    assert_eq!(joined.skipped, joined.join.exact_pairs, "the whole exact subset is skipped");
    assert_eq!(joined.failed, 0);

    let (interacting, _) = interacting_pairs(&cache);
    let out = joined.materialize(&cache);
    assert_eq!(out.pairs.len(), total);
    assert_eq!(out.status, CompletionStatus::Cancelled);
    for pair in &out.pairs {
        match pair {
            PairOutcome::Ok(pr) => {
                assert!(
                    !interacting.contains(&(pr.primary as u32, pr.reference as u32)),
                    "({}, {}) was exact work and must be skipped",
                    pr.primary,
                    pr.reference
                );
                assert_eq!(pr.relation, compute_cdr(&regions[pr.primary], &regions[pr.reference]));
            }
            PairOutcome::Skipped { primary, reference } => {
                assert!(
                    interacting.contains(&(*primary as u32, *reference as u32)),
                    "({primary}, {reference}) was mask-emittable and must not be skipped"
                );
            }
            PairOutcome::Failed(e) => panic!("nothing may fail: {e}"),
        }
    }
}

/// A zero deadline behaves like the pre-cancelled token, with
/// `DeadlineExceeded` status: the deadline governs exact work only.
#[test]
fn zero_deadline_join_skips_only_exact_pairs() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    faults::disarm_all();
    let regions = mixed_map();
    let cache = RegionCache::build(&regions);

    let joined = BatchEngine::new()
        .with_threads(2)
        .run_join(&cache, &RunPolicy::default().with_deadline(std::time::Duration::ZERO));

    assert_eq!(joined.status, CompletionStatus::DeadlineExceeded);
    assert_eq!(joined.succeeded, joined.join.mask_emitted);
    assert_eq!(joined.skipped, joined.join.exact_pairs);
    assert!(joined.join.mask_emitted > 0 && joined.join.exact_pairs > 0, "{:?}", joined.join);
}

/// Panic isolation parity: a poisoned exact pair fails alone — every
/// other pair (exact and mask-emitted) still computes, bit-identical to
/// the unpoisoned baseline, and the accounting closes.
#[test]
fn poisoned_exact_pair_is_isolated_and_survivors_match() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    faults::disarm_all();
    let regions = mixed_map();
    let cache = RegionCache::build(&regions);
    let total = regions.len() * (regions.len() - 1);
    let engine = BatchEngine::new().with_threads(1);
    let baseline = engine.run_all(&cache, &RunPolicy::default());
    assert_eq!(baseline.status, CompletionStatus::Complete);

    let guard = faults::arm(
        sites::ENGINE_PAIR_COMPUTE,
        FaultAction::Panic("poisoned join pair".into()),
        Trigger::Nth(3),
    );
    let joined =
        faults::with_silent_panics(|| engine.run_join(&cache, &RunPolicy::default()));
    drop(guard);

    assert_eq!(joined.status, CompletionStatus::PartialPanics);
    assert_eq!(joined.failed, 1, "exactly one exact pair is poisoned");
    assert_eq!(joined.succeeded, total - 1);
    assert_eq!(joined.skipped, 0);

    let out = joined.materialize(&cache);
    assert_eq!(out.status, CompletionStatus::PartialPanics);
    assert_eq!(out.failed, 1);
    assert_eq!(out.pairs.len(), baseline.pairs.len());
    let mut failures = 0;
    for (got, want) in out.pairs.iter().zip(&baseline.pairs) {
        match got {
            PairOutcome::Ok(_) => assert_eq!(got, want, "survivors must be bit-identical"),
            PairOutcome::Failed(e) => {
                failures += 1;
                let (i, j) = got.indices();
                assert_eq!((i, j), want.indices(), "the failure sits in its input-order slot");
                assert!(e.to_string().contains("poisoned join pair"), "{e}");
            }
            PairOutcome::Skipped { .. } => panic!("nothing may be skipped"),
        }
    }
    assert_eq!(failures, 1);
}

/// Mask-emitted pairs never were work items, so the per-pair compute
/// failpoint cannot touch them: with *every* compute hit poisoned, a
/// fully scattered map (empty interacting set) still completes cleanly.
#[test]
fn mask_emission_never_hits_the_compute_failpoint() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    faults::disarm_all();
    // Strictly diagonal boxes: every ordered pair is box-decided.
    let regions: Vec<Region> = (0..6)
        .map(|i| {
            let x = (i as f64) * 100.0;
            rect(x, x, x + 1.0, x + 1.0)
        })
        .collect();
    let cache = RegionCache::build(&regions);
    let total = regions.len() * (regions.len() - 1);
    let (interacting, _) = interacting_pairs(&cache);
    assert!(interacting.is_empty(), "the map must be fully mask-emittable");

    let fault_guard = faults::arm(
        sites::ENGINE_PAIR_COMPUTE,
        FaultAction::Panic("mask emission must not reach this site".into()),
        Trigger::Always,
    );
    let joined = BatchEngine::new().with_threads(2).run_join(&cache, &RunPolicy::default());
    let out = joined.materialize(&cache);
    drop(fault_guard);

    assert_eq!(out.status, CompletionStatus::Complete);
    assert_eq!(out.succeeded, total);
    assert_eq!(out.failed, 0);
    for pair in &out.pairs {
        match pair {
            PairOutcome::Ok(pr) => {
                assert_eq!(pr.relation, compute_cdr(&regions[pr.primary], &regions[pr.reference]));
            }
            other => panic!("every pair must compute: {other:?}"),
        }
    }
}

/// A map with both partition sides populated: a contact cluster around
/// the origin plus scattered satellites.
fn mixed_map() -> Vec<Region> {
    vec![
        rect(0.0, 0.0, 4.0, 4.0),
        rect(4.0, 0.0, 8.0, 4.0),     // shared edge
        rect(4.0, 4.0, 8.0, 8.0),     // corner touch
        rect(1.0, 1.0, 3.0, 3.0),     // strictly inside the reference's span
        rect(100.0, 100.0, 101.0, 101.0), // far satellite
        rect(-100.0, 50.0, -99.0, 51.0),  // far satellite
    ]
}
