//! Cross-validation of the batch engine (the parallel, MBB-prefiltered
//! pair pipeline) against the naive per-pair algorithms: outputs must be
//! **bit-identical** — relations equal and percentage matrices equal as
//! raw f64s, not approximately — on every workload family, at every
//! thread count, with every pair in the naive double loop's order.

use cardir::core::{compute_cdr, compute_cdr_pct};
use cardir::engine::{BatchEngine, EngineMode, RegionCache};
use cardir::geometry::{BoundingBox, Point, Region};
use cardir::workloads::{archipelago, random_map, RegionSpec, SplitMix64};

/// Checks one region family: engine output at 1, 2, and 4 threads — with
/// the MBB prefilter enabled *and* disabled — is bit-identical to the
/// naive loop, in both modes.
fn assert_engine_matches_naive(regions: &[Region], family: &str) {
    let cache = RegionCache::build(regions);
    for mode in [EngineMode::Qualitative, EngineMode::Quantitative] {
        // The naive reference: the plain double loop in primary-major
        // order, straight through compute_cdr / compute_cdr_pct.
        let mut naive = Vec::new();
        for (i, a) in regions.iter().enumerate() {
            for (j, b) in regions.iter().enumerate() {
                if i != j {
                    let pct = (mode == EngineMode::Quantitative).then(|| compute_cdr_pct(a, b));
                    naive.push((i, j, compute_cdr(a, b), pct));
                }
            }
        }
        for threads in [1usize, 2, 4] {
            for prefilter in [true, false] {
                let label = format!("{family}, {mode:?}, {threads} threads, prefilter={prefilter}");
                let result = BatchEngine::new()
                    .with_mode(mode)
                    .with_threads(threads)
                    .with_prefilter(prefilter)
                    .compute_all(&cache);
                assert_eq!(result.pairs.len(), naive.len(), "{label}");
                assert_eq!(result.stats.pairs, naive.len());
                if !prefilter {
                    assert_eq!(result.stats.prefilter_hits, 0, "{label}");
                    assert_eq!(result.stats.exact_pairs, naive.len(), "{label}");
                }
                for (got, (i, j, rel, pct)) in result.pairs.iter().zip(&naive) {
                    assert_eq!(
                        (got.primary, got.reference),
                        (*i, *j),
                        "{label}: order must be primary-major"
                    );
                    assert_eq!(got.relation, *rel, "{label}, pair ({i}, {j})");
                    assert_eq!(
                        got.percentages, *pct,
                        "{label}, pair ({i}, {j}): \
                         percentage matrices must be bit-identical"
                    );
                }
            }
        }
    }
}

/// Family 1: jittered-grid star maps — mostly disjoint boxes, so the
/// prefilter carries most pairs, at several sizes.
#[test]
fn grid_maps_bit_identical_across_threads() {
    let mut rng = SplitMix64::seed_from_u64(601);
    for n in [5usize, 17, 40] {
        let extent = BoundingBox::new(Point::new(0.0, 0.0), Point::new(600.0, 450.0));
        let regions: Vec<Region> =
            random_map(&mut rng, n, extent).into_iter().map(|m| m.region).collect();
        assert_engine_matches_naive(&regions, &format!("grid map n={n}"));
    }
}

/// Family 2: the Ancient-Greece scenario — real composite coastlines with
/// touching and straddling boxes that defeat the prefilter.
#[test]
fn greece_scenario_bit_identical_across_threads() {
    let regions: Vec<Region> =
        cardir::workloads::greece_scenario().into_iter().map(|r| r.region).collect();
    assert!(regions.len() >= 5, "scenario should exercise a real pair matrix");
    assert_engine_matches_naive(&regions, "greece scenario");
}

/// Family 3: composite archipelagos whose members interleave, keeping the
/// exact path dominant (the prefilter rarely fires).
#[test]
fn archipelagos_bit_identical_across_threads() {
    let mut rng = SplitMix64::seed_from_u64(602);
    let regions: Vec<Region> = (0..8)
        .map(|i| {
            let spec = RegionSpec {
                polygons: 1 + i % 4,
                vertices_per_polygon: 8,
                center: Point::new((i % 3) as f64 * 9.0, (i / 3) as f64 * 7.0),
                spread: 12.0,
            };
            archipelago(&mut rng, spec)
        })
        .collect();
    assert_engine_matches_naive(&regions, "archipelago");
}

/// Family 4: MBB boundary contact — every pair shares a grid line or a
/// corner with some neighbour, the exact configurations where the
/// prefilter must *decline* to decide. Prefilter on and off must agree
/// bit for bit (the strictness of the short-circuit is what this pins).
#[test]
fn shared_mbb_edges_and_corners_bit_identical_with_and_without_prefilter() {
    let rect = |x0: f64, y0: f64, x1: f64, y1: f64| {
        Region::from_coords([(x0, y0), (x1, y0), (x1, y1), (x0, y1)]).unwrap()
    };
    let regions = vec![
        rect(0.0, 0.0, 4.0, 4.0),   // the reference square
        rect(4.0, 0.0, 8.0, 4.0),   // shares the full east edge
        rect(0.0, 4.0, 4.0, 8.0),   // shares the full north edge
        rect(4.0, 4.0, 8.0, 8.0),   // touches only the NE corner
        rect(-4.0, -4.0, 0.0, 0.0), // touches only the SW corner
        rect(1.0, 4.0, 3.0, 6.0),   // sits on the north line, inside its span
        rect(-2.0, 2.0, 0.0, 3.0),  // sits on the west line
        rect(0.0, 0.0, 4.0, 4.0),   // exact duplicate of the reference
        rect(2.0, 2.0, 6.0, 6.0),   // straddles the NE corner
    ];
    assert_engine_matches_naive(&regions, "shared mbb edges/corners");
}

/// The engine's selected-pairs entry point agrees with the naive
/// computation on a random pair list, in list order, at several thread
/// counts.
#[test]
fn selected_pairs_bit_identical() {
    let mut rng = SplitMix64::seed_from_u64(603);
    let extent = BoundingBox::new(Point::new(0.0, 0.0), Point::new(500.0, 500.0));
    let regions: Vec<Region> =
        random_map(&mut rng, 30, extent).into_iter().map(|m| m.region).collect();
    let cache = RegionCache::build(&regions);
    let pairs: Vec<(usize, usize)> = (0..200)
        .map(|_| (rng.random_range(0..regions.len()), rng.random_range(0..regions.len())))
        .collect();
    for threads in [1usize, 2, 4] {
        let result = BatchEngine::new()
            .with_mode(EngineMode::Quantitative)
            .with_threads(threads)
            .compute_pairs(&cache, &pairs);
        assert_eq!(result.pairs.len(), pairs.len());
        for (got, &(i, j)) in result.pairs.iter().zip(&pairs) {
            assert_eq!((got.primary, got.reference), (i, j), "{threads} threads");
            assert_eq!(got.relation, compute_cdr(&regions[i], &regions[j]), "{threads} threads");
            assert_eq!(
                got.percentages,
                Some(compute_cdr_pct(&regions[i], &regions[j])),
                "{threads} threads, pair ({i}, {j})"
            );
        }
    }
}

/// `Configuration::compute_all_relations` (now engine-backed) stores the
/// same relations in the same order as the naive double loop over the
/// annotated regions — the XML output depends on both.
#[test]
fn configuration_relations_match_naive_order() {
    let mut rng = SplitMix64::seed_from_u64(604);
    let extent = BoundingBox::new(Point::new(0.0, 0.0), Point::new(400.0, 400.0));
    let map = random_map(&mut rng, 20, extent);
    let mut config = cardir::cardirect::Configuration::new("engine-check", "gen.png");
    for r in &map {
        config.add_region(r.id.clone(), r.id.clone(), r.color, r.region.clone()).unwrap();
    }
    config.compute_all_relations();
    let mut expected = Vec::new();
    for p in &map {
        for q in &map {
            if p.id != q.id {
                expected.push((p.id.clone(), q.id.clone(), compute_cdr(&p.region, &q.region)));
            }
        }
    }
    assert_eq!(config.relations().len(), expected.len());
    for (got, (p, q, rel)) in config.relations().iter().zip(&expected) {
        assert_eq!(&got.primary, p);
        assert_eq!(&got.reference, q);
        assert_eq!(&got.relation, rel, "{p} vs {q}");
    }
}
