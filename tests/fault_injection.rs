//! Fault-injection sweep over the resilient batch pipeline: failpoint
//! sites × actions (panic | error | latency) × thread counts, plus the
//! policy features (retries, deadlines, cancellation) and the metrics
//! plumbing.
//!
//! Failpoints are process-global; every test that arms one (or that
//! depends on none being armed) holds `SERIAL`. This file is its own
//! test binary, so no other suite can race it.

use cardir::engine::{
    BatchEngine, CancelToken, CompletionStatus, EngineMode, PairFailure, PairOutcome, RegionCache,
    RunPolicy,
};
use cardir::faults::{self, sites, FaultAction, Trigger};
use cardir::geometry::Region;
use cardir::telemetry::Registry;
use cardir::workloads::SplitMix64;
use std::sync::Mutex;
use std::time::Duration;

static SERIAL: Mutex<()> = Mutex::new(());

fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Region {
    Region::from_coords([(x0, y0), (x1, y0), (x1, y1), (x0, y1)]).unwrap()
}

/// `n` random disjoint-ish rectangles, deterministic in `seed`.
fn random_regions(n: usize, seed: u64) -> Vec<Region> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x0 = (rng.next_u64() % 1000) as f64 / 10.0;
            let y0 = (rng.next_u64() % 1000) as f64 / 10.0;
            let w = 1.0 + (rng.next_u64() % 50) as f64 / 10.0;
            let h = 1.0 + (rng.next_u64() % 50) as f64 / 10.0;
            rect(x0, y0, x0 + w, y0 + h)
        })
        .collect()
}

#[test]
fn default_policy_is_bit_identical_to_legacy_compute_all() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    faults::disarm_all();
    let regions = random_regions(12, 11);
    let cache = RegionCache::build(&regions);
    for threads in [1usize, 2, 4] {
        let engine = BatchEngine::new()
            .with_mode(EngineMode::Quantitative)
            .with_threads(threads);
        let legacy = engine.compute_all(&cache);
        let outcome = engine.run_all(&cache, &RunPolicy::default());

        assert_eq!(outcome.status, CompletionStatus::Complete);
        assert!(outcome.is_complete());
        assert_eq!(outcome.succeeded, legacy.pairs.len());
        assert_eq!(outcome.failed, 0);
        assert_eq!(outcome.skipped, 0);
        assert!(outcome.metrics.faults.is_clean());
        let relations: Vec<_> = outcome.relations().collect();
        assert_eq!(relations.len(), legacy.pairs.len());
        for (got, want) in relations.iter().zip(&legacy.pairs) {
            assert_eq!(*got, want, "threads={threads}");
        }
        assert_eq!(outcome.stats, legacy.stats);
    }
}

#[test]
fn site_sweep_accounting_closes_for_every_action_and_thread_count() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    faults::disarm_all();
    let regions = random_regions(10, 23);
    let cache = RegionCache::build(&regions);
    let total = regions.len() * (regions.len() - 1);
    let baseline = BatchEngine::new()
        .with_mode(EngineMode::Quantitative)
        .compute_all(&cache);

    let actions = [
        FaultAction::Panic("sweep".into()),
        FaultAction::Error("sweep".into()),
        FaultAction::Delay(Duration::from_micros(50)),
    ];
    for action in &actions {
        for threads in [1usize, 2, 4] {
            let guard = faults::arm(
                sites::ENGINE_PAIR_COMPUTE,
                action.clone(),
                Trigger::Probability { num: 1, den: 5, seed: 0xFEED ^ threads as u64 },
            );
            let outcome = faults::with_silent_panics(|| {
                BatchEngine::new()
                    .with_mode(EngineMode::Quantitative)
                    .with_threads(threads)
                    .run_all(&cache, &RunPolicy::default())
            });
            drop(guard);

            assert_eq!(
                outcome.succeeded + outcome.failed + outcome.skipped,
                total,
                "{action:?} threads={threads}: accounting must close"
            );
            assert_eq!(outcome.skipped, 0, "no deadline or cancel was set");
            assert_eq!(outcome.pairs.len(), total);
            // Latency never fails a pair; panic/error may.
            if matches!(action, FaultAction::Delay(_)) {
                assert_eq!(outcome.failed, 0, "latency must not fail pairs");
                assert_eq!(outcome.status, CompletionStatus::Complete);
            }
            // Every surviving pair is bit-identical to the baseline.
            for (got, want) in outcome.pairs.iter().zip(&baseline.pairs) {
                if let PairOutcome::Ok(pr) = got {
                    assert_eq!(pr, want, "{action:?} threads={threads}");
                }
            }
        }
    }
}

/// Satellite regression: one poisoned pair must not take down the worker
/// scope — all other results still come back, exactly once.
#[test]
fn one_poisoned_pair_still_yields_all_other_results() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    faults::disarm_all();
    let regions = random_regions(8, 5);
    let cache = RegionCache::build(&regions);
    let total = regions.len() * (regions.len() - 1);
    let baseline = BatchEngine::new()
        .with_mode(EngineMode::Quantitative)
        .compute_all(&cache);

    for threads in [1usize, 4] {
        // Exactly the 11th pair computation panics.
        let guard = faults::arm(
            sites::ENGINE_PAIR_COMPUTE,
            FaultAction::Panic("poisoned pair".into()),
            Trigger::Nth(11),
        );
        let outcome = faults::with_silent_panics(|| {
            BatchEngine::new()
                .with_mode(EngineMode::Quantitative)
                .with_threads(threads)
                .run_all(&cache, &RunPolicy::default())
        });
        drop(guard);

        assert_eq!(outcome.status, CompletionStatus::PartialPanics, "threads={threads}");
        assert_eq!(outcome.failed, 1, "threads={threads}: exactly one PairError");
        assert_eq!(outcome.succeeded, total - 1);
        assert_eq!(outcome.metrics.faults.panics_caught, 1);
        let failures: Vec<_> = outcome.failures().collect();
        assert_eq!(failures.len(), 1);
        assert!(matches!(failures[0].failure, PairFailure::Panicked(_)));
        assert!(failures[0].to_string().contains("poisoned pair"), "{}", failures[0]);
        // The N−1 others are correct and in their slots.
        for (got, want) in outcome.pairs.iter().zip(&baseline.pairs) {
            match got {
                PairOutcome::Ok(pr) => assert_eq!(pr, want),
                PairOutcome::Failed(e) => {
                    assert_eq!((e.primary, e.reference), (want.primary, want.reference))
                }
                PairOutcome::Skipped { .. } => panic!("nothing may be skipped"),
            }
        }
    }
}

/// The legacy infallible API re-raises the failure — but only after the
/// whole batch has run (the scope no longer aborts mid-flight).
#[test]
fn legacy_compute_all_rethrows_an_injected_panic() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    faults::disarm_all();
    let regions = random_regions(6, 7);
    let cache = RegionCache::build(&regions);
    let guard = faults::arm(
        sites::ENGINE_PAIR_COMPUTE,
        FaultAction::Panic("legacy".into()),
        Trigger::Nth(3),
    );
    let result = faults::with_silent_panics(|| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            BatchEngine::new().compute_all(&cache)
        }))
    });
    drop(guard);
    let message = faults::panic_message(result.expect_err("the failure must re-raise"));
    assert!(message.contains("failed after"), "{message}");
}

#[test]
fn transient_failures_recover_with_retries() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    faults::disarm_all();
    let regions = random_regions(4, 3);
    let cache = RegionCache::build(&regions);

    // The first two attempts anywhere fail; with two retries the first
    // pair consumes them and everything completes.
    let guard = faults::arm(
        sites::ENGINE_PAIR_COMPUTE,
        FaultAction::Error("transient".into()),
        Trigger::Times(2),
    );
    let outcome = BatchEngine::new().with_threads(1).run_all(
        &cache,
        &RunPolicy::default().with_retries(2).with_backoff(Duration::ZERO),
    );
    drop(guard);

    assert_eq!(outcome.status, CompletionStatus::Complete);
    assert_eq!(outcome.failed, 0);
    assert_eq!(outcome.metrics.faults.retries, 2);
    assert_eq!(outcome.metrics.faults.injected_failures, 2);
}

#[test]
fn retry_exhaustion_reports_the_attempt_count() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    faults::disarm_all();
    let regions = random_regions(3, 9);
    let cache = RegionCache::build(&regions);

    // A single-pair run where every attempt fails: true exhaustion.
    let guard = faults::arm(
        sites::ENGINE_PAIR_COMPUTE,
        FaultAction::Error("permanent".into()),
        Trigger::Always,
    );
    let outcome = BatchEngine::new()
        .with_threads(1)
        .run_pairs(
            &cache,
            &[(0, 1)],
            &RunPolicy::default().with_retries(3).with_backoff(Duration::ZERO),
        )
        .unwrap();
    drop(guard);

    assert_eq!(outcome.failed, 1);
    let failure = outcome.failures().next().unwrap();
    assert_eq!(failure.attempts, 4, "1 initial + 3 retries");
    assert!(matches!(failure.failure, PairFailure::Injected(_)));
}

#[test]
fn zero_deadline_skips_everything() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    faults::disarm_all();
    let regions = random_regions(8, 13);
    let cache = RegionCache::build(&regions);
    let total = regions.len() * (regions.len() - 1);

    let outcome = BatchEngine::new()
        .with_threads(2)
        .run_all(&cache, &RunPolicy::default().with_deadline(Duration::ZERO));

    assert_eq!(outcome.status, CompletionStatus::DeadlineExceeded);
    assert_eq!(outcome.skipped, total);
    assert_eq!(outcome.succeeded, 0);
    assert!(outcome.metrics.faults.deadline_hits > 0);
    // Every slot still names its pair.
    assert_eq!(outcome.pairs.len(), total);
    for pair in &outcome.pairs {
        assert!(matches!(pair, PairOutcome::Skipped { .. }));
    }
}

#[test]
fn mid_run_deadline_completes_some_chunks_and_skips_the_rest() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    faults::disarm_all();
    // 30 regions → 870 pairs → 4 chunks of ≤256 on one thread.
    let regions = random_regions(30, 17);
    let cache = RegionCache::build(&regions);
    let total = regions.len() * (regions.len() - 1);

    // Each chunk claim stalls 30 ms; the 50 ms deadline lets roughly one
    // or two chunks through, never all four.
    let guard = faults::arm(
        sites::ENGINE_CHUNK_CLAIM,
        FaultAction::Delay(Duration::from_millis(30)),
        Trigger::Always,
    );
    let outcome = BatchEngine::new()
        .with_threads(1)
        .run_all(&cache, &RunPolicy::default().with_deadline(Duration::from_millis(50)));
    drop(guard);

    assert_eq!(outcome.status, CompletionStatus::DeadlineExceeded);
    assert!(outcome.skipped > 0, "some chunks must miss the deadline");
    assert!(outcome.succeeded > 0, "the first chunk fits in the deadline");
    assert_eq!(outcome.succeeded + outcome.skipped, total);
    // Completed work is contiguous from the front (chunk order on one
    // thread), and all of it is correct.
    let baseline = BatchEngine::new().compute_all(&cache);
    for (got, want) in outcome.pairs.iter().zip(&baseline.pairs) {
        if let PairOutcome::Ok(pr) = got {
            assert_eq!(pr, want);
        }
    }
}

#[test]
fn pre_cancelled_token_skips_everything() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    faults::disarm_all();
    let regions = random_regions(6, 19);
    let cache = RegionCache::build(&regions);
    let total = regions.len() * (regions.len() - 1);

    let token = CancelToken::new();
    token.cancel();
    let outcome = BatchEngine::new()
        .with_threads(4)
        .run_all(&cache, &RunPolicy::default().with_cancel(token));

    assert_eq!(outcome.status, CompletionStatus::Cancelled);
    assert_eq!(outcome.skipped, total);
    assert!(outcome.metrics.faults.cancel_hits > 0);
}

#[test]
fn cache_build_failpoint_panics_are_isolated_by_caller() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    faults::disarm_all();
    let regions = random_regions(5, 29);
    let guard = faults::arm(
        sites::ENGINE_CACHE_INSERT,
        FaultAction::Panic("corrupt geometry".into()),
        Trigger::Nth(3),
    );
    let result = faults::with_silent_panics(|| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| RegionCache::build(&regions)))
    });
    drop(guard);
    let message = faults::panic_message(result.expect_err("the cache build must panic"));
    assert!(message.contains("corrupt geometry"), "{message}");

    // Disarmed, the same build succeeds.
    assert_eq!(RegionCache::build(&regions).len(), 5);
}

#[test]
fn fault_events_flow_into_telemetry() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    faults::disarm_all();
    let regions = random_regions(8, 31);
    let cache = RegionCache::build(&regions);

    let guard = faults::arm(
        sites::ENGINE_PAIR_COMPUTE,
        FaultAction::Panic("telemetry".into()),
        Trigger::Nth(5),
    );
    let outcome = faults::with_silent_panics(|| {
        BatchEngine::new().with_threads(2).run_all(&cache, &RunPolicy::default())
    });
    drop(guard);
    assert_eq!(outcome.failed, 1);

    let registry = Registry::new();
    outcome.metrics.export(&registry);
    let snap = registry.snapshot();
    assert_eq!(snap.counter("engine.faults.panics_caught"), Some(1));
    assert_eq!(snap.counter("engine.faults.failed_pairs"), Some(1));
    // The failpoint registry's own counters export too (delta-based, so
    // at least this run's injected panic is present).
    assert!(snap.counter("faults.injected_panics").unwrap_or(0) >= 1);
}
