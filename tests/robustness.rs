//! Robustness: none of the text front ends (XML, query language, WKT,
//! relation parser, raster text) may panic on arbitrary input — they
//! return structured errors instead.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn xml_parser_never_panics(input in ".{0,300}") {
        let _ = cardir::cardirect::from_xml(&input);
    }

    #[test]
    fn xml_parser_never_panics_on_tagged_soup(
        input in "(<[A-Za-z]{1,8}( [a-z]{1,4}=('[^']{0,6}'|\"[^\"]{0,6}\"))?/?>|</[A-Za-z]{1,8}>|[a-z &;<>\"']{0,12}){0,20}"
    ) {
        let _ = cardir::cardirect::from_xml(&input);
        let _ = cardir::cardirect::xml::parse_events(&input);
    }

    #[test]
    fn query_parser_never_panics(input in ".{0,200}") {
        let _ = cardir::cardirect::parse_query(&input);
    }

    #[test]
    fn query_parser_never_panics_on_near_queries(
        input in r"\{\([a-z, ]{0,10}\) *\| *[a-zA-Z(){}=:, ]{0,60}\}"
    ) {
        let _ = cardir::cardirect::parse_query(&input);
    }

    #[test]
    fn wkt_parser_never_panics(input in "[A-Z()0-9 .,-]{0,200}") {
        let _ = cardir::geometry::from_wkt(&input);
    }

    #[test]
    fn relation_parser_never_panics(input in ".{0,40}") {
        let _ = input.parse::<cardir::core::CardinalRelation>();
    }

    #[test]
    fn raster_text_never_panics(input in "[ .0-9a-z\n]{0,200}") {
        let _ = cardir::segment::Raster::from_text(&input);
    }
}

// Round-trip laws: whatever the writers emit, the parsers accept — for
// configurations with hostile strings in every text field, and random
// WKT regions.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn xml_writer_output_always_parses(name in ".{0,30}", file in ".{0,30}", color in ".{0,15}") {
        let mut config = cardir::cardirect::Configuration::new(name, file);
        let region = cardir::geometry::Region::from_coords(
            [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)],
        ).unwrap();
        config.add_region("r1", "名前 <&>", color, region).unwrap();
        config.compute_all_relations();
        let xml = cardir::cardirect::to_xml(&config);
        let back = cardir::cardirect::from_xml(&xml).unwrap();
        prop_assert_eq!(&back.name, &config.name);
        prop_assert_eq!(&back.file, &config.file);
        prop_assert_eq!(&back.regions()[0].color, &config.regions()[0].color);
    }

    /// WKT round-trip law over random star regions.
    #[test]
    fn wkt_round_trip_random_regions(seed in 0u64..u64::MAX, n in 3usize..24, k in 1usize..4) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use cardir::geometry::{from_wkt, to_wkt, Point, Region};
        let mut rng = StdRng::seed_from_u64(seed);
        let polys: Vec<_> = (0..k)
            .map(|i| cardir::workloads::star_polygon(
                &mut rng, Point::new(i as f64 * 20.0, 0.0), 1.0, 4.0, n))
            .collect();
        let region = Region::new(polys).unwrap();
        let back = from_wkt(&to_wkt(&region)).unwrap();
        prop_assert_eq!(back, region);
    }
}
