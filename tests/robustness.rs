//! Robustness: none of the text front ends (XML, query language, WKT,
//! relation parser, raster text) may panic on arbitrary input — they
//! return structured errors instead. Inputs come from a seeded
//! [`SplitMix64`] fuzzer, so every run replays the identical corpus.

use cardir::workloads::SplitMix64;

/// A random string of up to `max_len` chars drawn from `pool`.
fn fuzz(rng: &mut SplitMix64, max_len: usize, pool: &[char]) -> String {
    let len = rng.random_range(0..=max_len);
    (0..len).map(|_| pool[rng.random_range(0..pool.len())]).collect()
}

/// A wide pool: ASCII text, XML/query metacharacters, whitespace,
/// controls, and multi-byte characters.
const WILD: &[char] = &[
    'a', 'b', 'z', 'A', 'Z', '0', '1', '9', ' ', '\t', '\n', '\r', '<', '>', '&', ';', '"', '\'',
    '{', '}', '(', ')', '|', '=', ':', ',', '.', '-', '_', '/', '\\', '%', '#', '?', '!', '\0',
    'é', '名', '前', '🦀', '\u{7f}', '\u{2028}',
];

#[test]
fn xml_parser_never_panics() {
    let mut rng = SplitMix64::seed_from_u64(201);
    for _ in 0..512 {
        let input = fuzz(&mut rng, 300, WILD);
        let _ = cardir::cardirect::from_xml(&input);
    }
}

/// Structured tag soup: random open/close/self-closing tags with random
/// attributes, interleaved with text — much likelier to reach deep parser
/// states than uniform noise.
#[test]
fn xml_parser_never_panics_on_tagged_soup() {
    let mut rng = SplitMix64::seed_from_u64(202);
    let names = ["Image", "Region", "Rel", "a", "polyGon", "x1y2"];
    let attrs = ["name", "file", "id", "x", "col"];
    for _ in 0..512 {
        let mut input = String::new();
        for _ in 0..rng.random_range(0usize..20) {
            match rng.random_range(0u32..4) {
                0 => {
                    input.push('<');
                    input.push_str(names[rng.random_range(0..names.len())]);
                    if rng.random_bool(0.5) {
                        let quote = if rng.random_bool(0.5) { '\'' } else { '"' };
                        input.push(' ');
                        input.push_str(attrs[rng.random_range(0..attrs.len())]);
                        input.push('=');
                        input.push(quote);
                        input.push_str(&fuzz(&mut rng, 6, WILD).replace(quote, ""));
                        input.push(quote);
                    }
                    if rng.random_bool(0.3) {
                        input.push('/');
                    }
                    input.push('>');
                }
                1 => {
                    input.push_str("</");
                    input.push_str(names[rng.random_range(0..names.len())]);
                    input.push('>');
                }
                _ => input.push_str(&fuzz(&mut rng, 12, WILD)),
            }
        }
        let _ = cardir::cardirect::from_xml(&input);
        let _ = cardir::cardirect::xml::parse_events(&input);
    }
}

#[test]
fn query_parser_never_panics() {
    let mut rng = SplitMix64::seed_from_u64(203);
    for _ in 0..512 {
        let input = fuzz(&mut rng, 200, WILD);
        let _ = cardir::cardirect::parse_query(&input);
    }
}

/// Near-queries: the right shape (`{(...) | ...}`) with noisy bodies.
#[test]
fn query_parser_never_panics_on_near_queries() {
    let mut rng = SplitMix64::seed_from_u64(204);
    let body_pool: Vec<char> =
        "abcxyzNSEWB(){}=:, ".chars().collect();
    let var_pool: Vec<char> = "xyz, ".chars().collect();
    for _ in 0..512 {
        let input = format!(
            "{{({}) | {}}}",
            fuzz(&mut rng, 10, &var_pool),
            fuzz(&mut rng, 60, &body_pool)
        );
        let _ = cardir::cardirect::parse_query(&input);
    }
}

#[test]
fn wkt_parser_never_panics() {
    let mut rng = SplitMix64::seed_from_u64(205);
    let pool: Vec<char> = "POLYGONMULTI()0123456789 .,-".chars().collect();
    for _ in 0..512 {
        let input = fuzz(&mut rng, 200, &pool);
        let _ = cardir::geometry::from_wkt(&input);
    }
}

#[test]
fn relation_parser_never_panics() {
    let mut rng = SplitMix64::seed_from_u64(206);
    let pool: Vec<char> = "NSEWB: nswb,;".chars().collect();
    for _ in 0..512 {
        let _ = fuzz(&mut rng, 40, WILD).parse::<cardir::core::CardinalRelation>();
        let _ = fuzz(&mut rng, 40, &pool).parse::<cardir::core::CardinalRelation>();
    }
}

#[test]
fn raster_text_never_panics() {
    let mut rng = SplitMix64::seed_from_u64(207);
    let pool: Vec<char> = " .0123456789abcxyz\n".chars().collect();
    for _ in 0..512 {
        let input = fuzz(&mut rng, 200, &pool);
        let _ = cardir::segment::Raster::from_text(&input);
    }
}

/// Round-trip law: whatever the writer emits, the parser accepts — for
/// configurations with hostile strings in every text field.
#[test]
fn xml_writer_output_always_parses() {
    let mut rng = SplitMix64::seed_from_u64(208);
    for case in 0..64 {
        let name = fuzz(&mut rng, 30, WILD);
        let file = fuzz(&mut rng, 30, WILD);
        let color = fuzz(&mut rng, 15, WILD);
        let mut config = cardir::cardirect::Configuration::new(name, file);
        let region =
            cardir::geometry::Region::from_coords([(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)]).unwrap();
        config.add_region("r1", "名前 <&>", color, region).unwrap();
        config.compute_all_relations();
        let xml = cardir::cardirect::to_xml(&config);
        let back = cardir::cardirect::from_xml(&xml).unwrap();
        assert_eq!(&back.name, &config.name, "case {case}");
        assert_eq!(&back.file, &config.file, "case {case}");
        assert_eq!(&back.regions()[0].color, &config.regions()[0].color, "case {case}");
    }
}

/// WKT round-trip law over random star regions.
#[test]
fn wkt_round_trip_random_regions() {
    use cardir::geometry::{from_wkt, to_wkt, Point, Region};
    let mut rng = SplitMix64::seed_from_u64(209);
    for case in 0..64 {
        let n = rng.random_range(3usize..24);
        let k = rng.random_range(1usize..4);
        let polys: Vec<_> = (0..k)
            .map(|i| {
                cardir::workloads::star_polygon(&mut rng, Point::new(i as f64 * 20.0, 0.0), 1.0, 4.0, n)
            })
            .collect();
        let region = Region::new(polys).unwrap();
        let back = from_wkt(&to_wkt(&region)).unwrap();
        assert_eq!(back, region, "case {case}");
    }
}
