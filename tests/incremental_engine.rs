//! Cross-layer tests of the incremental engine: edit scripts across
//! modes and thread counts differentially asserted against a fresh full
//! recompute, plus fault-driven pending/repair flows.
//!
//! Failpoints are process-global; every test that arms one (or that
//! depends on none being armed) holds `SERIAL`. This file is its own
//! test binary, so no other suite can race it.

use cardir::engine::{
    BatchEngine, CompletionStatus, Edit, EngineMode, IncrementalEngine, IncrementalError,
    PairRelation, RegionCache, RunPolicy,
};
use cardir::faults::{self, sites, FaultAction, Trigger};
use cardir::geometry::{BoundingBox, Point, Region};
use cardir::telemetry::Registry;
use cardir::workloads::{random_map, SplitMix64};
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn extent() -> BoundingBox {
    BoundingBox::new(Point::new(0.0, 0.0), Point::new(400.0, 300.0))
}

fn map(seed: u64, n: usize) -> Vec<Region> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    random_map(&mut rng, n, extent()).into_iter().map(|m| m.region).collect()
}

fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Region {
    Region::from_coords([(x0, y0), (x1, y0), (x1, y1), (x0, y1)]).unwrap()
}

/// The oracle: a fresh prefilter-on spatial-join run over the engine's
/// live geometry, fully materialized.
fn full_recompute(engine: &IncrementalEngine) -> Vec<PairRelation> {
    let regions: Vec<&Region> = engine.live_regions().map(|(_, r)| r).collect();
    let cache = RegionCache::build(regions);
    let batch = BatchEngine::new().with_mode(engine.mode()).with_threads(1);
    let outcome = batch.run_join(&cache, &RunPolicy::default()).materialize(&cache);
    outcome.pairs.iter().map(|p| p.ok().expect("clean oracle run").clone()).collect()
}

fn assert_matches_full(engine: &IncrementalEngine, context: &str) {
    let materialized = engine.materialize().expect("no pending pairs");
    let oracle = full_recompute(engine);
    assert_eq!(materialized.len(), oracle.len(), "{context}: pair count");
    for (got, want) in materialized.iter().zip(&oracle) {
        assert_eq!(got, want, "{context}: pair ({}, {})", got.primary, got.reference);
    }
}

/// A deterministic mixed edit script, bit-compared against the oracle
/// after every step, across both modes and several thread counts.
#[test]
fn edit_scripts_match_full_recompute_across_modes_and_threads() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    faults::disarm_all();
    for mode in [EngineMode::Qualitative, EngineMode::Quantitative] {
        for threads in [1usize, 2, 4] {
            let mut engine =
                IncrementalEngine::bootstrap(mode, threads, map(601, 20), &RunPolicy::default());
            assert_matches_full(&engine, "bootstrap");
            let mut rng = SplitMix64::seed_from_u64(602);
            for (step, replacement) in map(603, 10).into_iter().enumerate() {
                let live: Vec<u32> = engine.live_regions().map(|(id, _)| id).collect();
                let edit = match step % 4 {
                    0 | 1 => {
                        let victim = live[rng.random_range(0..live.len() as u64) as usize];
                        Edit::Replace(victim, replacement)
                    }
                    2 => Edit::Insert(replacement),
                    _ => {
                        let victim = live[rng.random_range(0..live.len() as u64) as usize];
                        Edit::Remove(victim)
                    }
                };
                let delta = engine.apply(edit).expect("edit applies");
                assert_eq!(delta.status, CompletionStatus::Complete);
                assert_matches_full(
                    &engine,
                    &format!("mode {mode:?} threads {threads} step {step}"),
                );
            }
        }
    }
}

/// Faulted edits park pairs as pending — never as wrong relations —
/// and a repair after disarming converges to the exact state.
#[test]
fn faulted_edits_park_pending_then_repair_converges() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    faults::disarm_all();
    let mut engine = IncrementalEngine::bootstrap(
        EngineMode::Quantitative,
        2,
        map(611, 15),
        &RunPolicy::default(),
    );

    let guard = faults::arm(
        sites::ENGINE_PAIR_COMPUTE,
        FaultAction::Error("injected".into()),
        Trigger::Probability { num: 1, den: 2, seed: 611 },
    );
    let mut pending_seen = 0;
    for replacement in map(613, 6) {
        let live: Vec<u32> = engine.live_regions().map(|(id, _)| id).collect();
        let victim = live[(replacement.mbb().min.x as u64 % live.len() as u64) as usize];
        let delta = engine.apply(Edit::Replace(victim, replacement)).expect("edit applies");
        pending_seen += delta.pending_added.len();
    }
    drop(guard);
    assert!(pending_seen > 0, "the 1-in-2 fault never fired across 6 edits");

    if engine.pending_count() > 0 {
        // Reads exclude pending pairs rather than serving stale values.
        let (a, b) = engine.pending_pairs()[0];
        assert_eq!(engine.relation(a, b), None);
        assert!(matches!(
            engine.materialize(),
            Err(IncrementalError::PendingPairs(_))
        ));
    }

    let repaired = engine.repair();
    assert_eq!(repaired.still_pending, 0, "disarmed repair must clear the backlog");
    assert_eq!(repaired.status, CompletionStatus::Complete);
    assert_matches_full(&engine, "after repair");
}

/// A repair that faults again keeps the unlucky pairs pending; a second
/// clean repair finishes the job.
#[test]
fn repair_under_fire_keeps_failures_pending() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    faults::disarm_all();
    let mut engine = IncrementalEngine::bootstrap(
        EngineMode::Qualitative,
        1,
        vec![
            rect(0.0, 0.0, 10.0, 10.0),
            rect(5.0, 5.0, 15.0, 15.0),
            rect(8.0, 2.0, 18.0, 8.0),
        ],
        &RunPolicy::default(),
    );

    // Fault every compute: the replace parks all its pairs.
    let guard = faults::arm(
        sites::ENGINE_PAIR_COMPUTE,
        FaultAction::Error("injected".into()),
        Trigger::Always,
    );
    let delta = engine.apply(Edit::Replace(1, rect(6.0, 6.0, 16.0, 16.0))).expect("applies");
    assert!(delta.installed.is_empty());
    assert!(!delta.pending_added.is_empty());

    // Repair under the same fault: everything stays pending.
    let repaired = engine.repair();
    assert_eq!(repaired.installed.len(), 0);
    assert_eq!(repaired.still_pending, engine.pending_count());
    assert!(repaired.still_pending > 0);
    drop(guard);

    // Clean repair converges.
    let repaired = engine.repair();
    assert_eq!(repaired.still_pending, 0);
    assert_matches_full(&engine, "after second repair");
}

/// Pending pairs of an edited slot are dropped by the invalidation (the
/// new geometry supersedes the failed computation) rather than repaired
/// against stale geometry.
#[test]
fn invalidation_supersedes_pending_pairs_of_the_edited_slot() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    faults::disarm_all();
    let mut engine = IncrementalEngine::bootstrap(
        EngineMode::Qualitative,
        1,
        vec![rect(0.0, 0.0, 10.0, 10.0), rect(5.0, 5.0, 15.0, 15.0)],
        &RunPolicy::default(),
    );
    let guard = faults::arm(
        sites::ENGINE_PAIR_COMPUTE,
        FaultAction::Error("injected".into()),
        Trigger::Always,
    );
    engine.apply(Edit::Replace(1, rect(6.0, 6.0, 16.0, 16.0))).expect("applies");
    assert!(engine.pending_count() > 0);
    drop(guard);

    // Removing the slot drops its pending pairs with it.
    engine.apply(Edit::Remove(1)).expect("applies");
    assert_eq!(engine.pending_count(), 0);
    assert_matches_full(&engine, "after remove of faulted slot");
}

/// Panic isolation holds through the incremental recompute path: an
/// injected panic in a pair computation is absorbed as a failed pair,
/// not an unwind through `apply`.
#[test]
fn injected_panic_is_isolated_as_a_pending_pair() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    faults::disarm_all();
    let mut engine = IncrementalEngine::bootstrap(
        EngineMode::Quantitative,
        1,
        vec![rect(0.0, 0.0, 10.0, 10.0), rect(5.0, 5.0, 15.0, 15.0)],
        &RunPolicy::default(),
    );
    let guard = faults::arm(
        sites::ENGINE_PAIR_COMPUTE,
        FaultAction::Panic("injected".into()),
        Trigger::Times(1),
    );
    let delta = faults::with_silent_panics(|| {
        engine.apply(Edit::Replace(1, rect(6.0, 6.0, 16.0, 16.0)))
    })
    .expect("apply absorbs the panic");
    drop(guard);
    assert_eq!(delta.pending_added.len(), 1, "the panicked pair parks as pending");
    let repaired = engine.repair();
    assert_eq!(repaired.still_pending, 0);
    assert_matches_full(&engine, "after panic repair");
}

/// The engine's export and the fault registry's per-site counters land
/// in one registry snapshot.
#[test]
fn incremental_and_fault_site_counters_share_a_registry() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    faults::disarm_all();
    let mut engine = IncrementalEngine::bootstrap(
        EngineMode::Qualitative,
        1,
        map(631, 6),
        &RunPolicy::default(),
    );
    let guard = faults::arm(
        sites::ENGINE_PAIR_COMPUTE,
        FaultAction::Error("injected".into()),
        Trigger::Times(1),
    );
    for replacement in map(633, 3) {
        let live: Vec<u32> = engine.live_regions().map(|(id, _)| id).collect();
        engine.apply(Edit::Replace(live[0], replacement)).expect("applies");
    }
    drop(guard);
    engine.repair();

    let registry = Registry::new();
    engine.export(&registry);
    faults::export(&registry);
    let snap = registry.snapshot();
    assert!(snap.counter("incremental.edits_applied").unwrap_or(0) >= 3);
    assert!(snap.counter("incremental.pairs_invalidated").unwrap_or(0) > 0);
    // The injected fault fired at least once somewhere in the script;
    // its per-site counter reports under the same registry.
    assert!(snap.counter("faults.site.engine.pair.compute").unwrap_or(0) >= 1);
}
