//! Experiments E1–E3 and A1 (DESIGN.md): every worked example and stated
//! number in the paper, reproduced end to end through the public API.

use cardir::core::{
    clipping_cdr, compute_cdr, compute_cdr_pct, compute_cdr_with_stats, CardinalRelation,
    DirectionMatrix, Tile,
};
use cardir::workloads::paper;

/// E1 — Example 1 / Fig. 1: `a S b`, `c NE:E b`,
/// `d B:S:SW:W:NW:N:E:SE b`.
#[test]
fn e1_example_1_relations() {
    let b = paper::reference_b();
    assert_eq!(compute_cdr(&paper::fig1_a_south(), &b).to_string(), "S");
    assert_eq!(compute_cdr(&paper::fig1_c_northeast_east(), &b).to_string(), "NE:E");
    assert_eq!(
        compute_cdr(&paper::fig1_d_composite(), &b).to_string(),
        "B:S:SW:W:NW:N:E:SE"
    );
}

/// E1 — the direction-relation matrices printed in Section 2.
#[test]
fn e1_direction_matrices() {
    let s: CardinalRelation = "S".parse().unwrap();
    assert_eq!(DirectionMatrix::from_relation(s).to_string(), "□□□\n□□□\n□■□");
    let ne_e: CardinalRelation = "NE:E".parse().unwrap();
    assert_eq!(DirectionMatrix::from_relation(ne_e).to_string(), "□□■\n□□■\n□□□");
    let big: CardinalRelation = "B:S:SW:W:NW:N:E:SE".parse().unwrap();
    assert_eq!(DirectionMatrix::from_relation(big).to_string(), "■■□\n■■■\n■■■");
}

/// E2 — Section 2: region `c` is 50 % north-east and 50 % east of `b`,
/// matching the percentage matrix printed in the paper.
#[test]
fn e2_percentage_matrix_of_fig_1c() {
    let b = paper::reference_b();
    let m = compute_cdr_pct(&paper::fig1_c_northeast_east(), &b);
    assert_eq!(m.to_string(), "0% 0% 50%\n0% 0% 50%\n0% 0% 0%");
    assert!((m.sum() - 100.0).abs() < 1e-9);
}

/// A1 — Example 2 / Fig. 4: classifying vertices alone loses tiles; the
/// relation must include B, N and E although no vertex lies there.
#[test]
fn a1_example_2_vertices_alone_are_wrong() {
    let b = paper::reference_b();
    let quad = paper::example3_quadrangle();
    let mbb = b.mbb();
    // Which tiles do the four vertices hit? (W, NW, NW, NE as the paper
    // says.)
    let mut vertex_tiles = 0u16;
    for p in quad.polygons()[0].vertices() {
        let xb = cardir::geometry::band_of(p.x, mbb.min.x, mbb.max.x);
        let yb = cardir::geometry::band_of(p.y, mbb.min.y, mbb.max.y);
        vertex_tiles |= Tile::from_bands(xb, yb).bit();
    }
    let vertex_relation = CardinalRelation::from_bits(vertex_tiles).unwrap();
    let true_relation = compute_cdr(&quad, &b);
    assert_eq!(true_relation.to_string(), "B:W:NW:N:NE:E");
    assert_ne!(vertex_relation, true_relation);
    assert!(vertex_relation.is_subset_of(true_relation));
    // The vertices cover W/NW plus the closed-corner NE.
    assert!(vertex_relation.contains(Tile::W));
    assert!(vertex_relation.contains(Tile::NW));
    assert!(!vertex_relation.contains(Tile::B));
}

/// E3 — Example 3: the quadrangle divides into 9 edges (2 + 1 + 3 + 3),
/// against 19-ish for clipping.
#[test]
fn e3_example_3_edge_counts() {
    let b = paper::reference_b();
    let quad = paper::example3_quadrangle();
    let (rel, stats) = compute_cdr_with_stats(&quad, &b);
    assert_eq!(rel.to_string(), "B:W:NW:N:NE:E");
    assert_eq!(stats.input_edges, 4);
    assert_eq!(stats.output_edges, 9);
    let clipped = clipping_cdr(&quad, &b);
    assert_eq!(clipped.relation, rel);
    assert!(
        clipped.stats.output_edges > stats.output_edges,
        "clipping must introduce more edges: {} vs {}",
        clipped.stats.output_edges,
        stats.output_edges
    );
}

/// E3 — Fig. 3b: 8 divided edges vs 16 clipped edges.
#[test]
fn e3_fig_3b_edge_counts() {
    let b = paper::reference_b();
    let quad = paper::fig3b_quadrangle();
    let (_, stats) = compute_cdr_with_stats(&quad, &b);
    assert_eq!(stats.output_edges, 8);
    let clipped = clipping_cdr(&quad, &b);
    assert_eq!(clipped.stats.output_edges, 16);
    assert_eq!(clipped.stats.output_polygons, 4);
}

/// E3 — Fig. 3c: the worst-case triangle gives 11 divided edges vs ~35
/// clipped edges ("2 triangles, 6 quadrangles and 1 pentagon"; the paper
/// text says 34 in one place and 35 in another).
#[test]
fn e3_fig_3c_edge_counts() {
    let b = paper::reference_b();
    let tri = paper::fig3c_triangle();
    let (rel, stats) = compute_cdr_with_stats(&tri, &b);
    assert_eq!(stats.input_edges, 3);
    assert_eq!(stats.output_edges, 11);
    assert_eq!(rel, CardinalRelation::OMNI);
    let clipped = clipping_cdr(&tri, &b);
    assert_eq!(clipped.stats.output_polygons, 9);
    assert!(
        (30..=36).contains(&clipped.stats.output_edges),
        "expected ~34-35 clipped edges, got {}",
        clipped.stats.output_edges
    );
    // The paper's cost argument: clipping also scans every edge nine
    // times, division scans once.
    assert_eq!(clipped.stats.edges_scanned, 9 * 3);
}

/// E3 — the percentages of both algorithms agree on every paper shape.
#[test]
fn e3_baseline_and_fast_percentages_agree() {
    let b = paper::reference_b();
    for region in [
        paper::fig1_a_south(),
        paper::fig1_c_northeast_east(),
        paper::fig1_d_composite(),
        paper::fig3b_quadrangle(),
        paper::fig3c_triangle(),
        paper::example3_quadrangle(),
    ] {
        let fast = cardir::core::tile_areas(&region, &b);
        let clipped = clipping_cdr(&region, &b);
        for t in cardir::core::ALL_TILES {
            assert!(
                (fast.get(t) - clipped.areas.get(t)).abs() < 1e-9 * region.area(),
                "tile {t}: {} vs {}",
                fast.get(t),
                clipped.areas.get(t)
            );
        }
    }
}
