//! Experiment E8 (DESIGN.md): the Section-4 query over the Fig. 11
//! scenario, plus broader query-language behaviour.

use cardir::cardirect::{evaluate, evaluate_indexed, parse_query, Configuration, RegionIndex};
use cardir::workloads::greece;

fn config() -> Configuration {
    let mut c = Configuration::new("Ancient Greece", "peloponnesian_war.png");
    for r in greece::scenario() {
        c.add_region(r.name.to_lowercase(), r.name, r.alliance.color(), r.region).unwrap();
    }
    c.compute_all_relations();
    c
}

/// The paper's exact query: Athenean regions surrounded by a Spartan
/// region. Answer: Peloponnesos surrounds Aegina.
#[test]
fn e8_the_papers_query() {
    let c = config();
    let q = parse_query(
        "{(a, b) | color(a) = red, color(b) = blue, a S:SW:W:NW:N:NE:E:SE b}",
    )
    .unwrap();
    let answers = evaluate(&q, &c).unwrap();
    assert_eq!(answers.len(), 1);
    assert_eq!(answers[0].values, ["peloponnesos", "aegina"]);
}

/// Fig. 12 content through the query layer: which regions are B:S:SW:W
/// of Attica?
#[test]
fn fig12_relation_as_query() {
    let c = config();
    let q = parse_query("{(x, y) | y = Attica, x B:S:SW:W y}").unwrap();
    let answers = evaluate(&q, &c).unwrap();
    assert_eq!(answers.len(), 1);
    assert_eq!(answers[0].values, ["peloponnesos", "attica"]);
}

/// Thematic-only queries: alliance membership by colour.
#[test]
fn alliance_membership() {
    let c = config();
    let q = parse_query("{(x) | color(x) = blue}").unwrap();
    let answers = evaluate(&q, &c).unwrap();
    let ids: Vec<&str> = answers.iter().map(|b| b.values[0].as_str()).collect();
    assert_eq!(ids, ["attica", "islands", "east", "corfu", "southitaly", "aegina"]);
}

/// Disjunctive predicates: regions north or north-west of Attica.
#[test]
fn disjunctive_predicate() {
    let c = config();
    let q = parse_query("{(x, y) | y = Attica, x {N, NW, NW:N} y}").unwrap();
    let answers = evaluate(&q, &c).unwrap();
    assert!(!answers.is_empty());
    for b in &answers {
        let rel = c.relation_between(&b.values[0], "attica").unwrap();
        assert!(["N", "NW", "NW:N"].contains(&rel.to_string().as_str()), "{rel}");
    }
}

/// The indexed evaluator returns identical answers on every query — on a
/// configuration *without* precomputed relations, so the R-tree actually
/// prunes `compute_cdr` calls.
#[test]
fn indexed_matches_plain_without_stored_relations() {
    let mut c = Configuration::new("Ancient Greece", "map.png");
    for r in greece::scenario() {
        c.add_region(r.name.to_lowercase(), r.name, r.alliance.color(), r.region).unwrap();
    }
    // No compute_all_relations here: relations are computed on demand.
    let index = RegionIndex::build(&c);
    for q_str in [
        "{(a, b) | color(a) = red, color(b) = blue, a S:SW:W:NW:N:NE:E:SE b}",
        "{(x, y) | y = Attica, x B:S:SW:W y}",
        "{(x, y) | x NW y}",
        "{(x, y, z) | x W y, y W z, color(z) = blue}",
    ] {
        let q = parse_query(q_str).unwrap();
        let plain = evaluate(&q, &c).unwrap();
        let indexed = evaluate_indexed(&q, &c, &index).unwrap();
        assert_eq!(plain, indexed, "query: {q_str}");
    }
}

/// Quoted names resolve through identity conditions.
#[test]
fn identity_by_display_name() {
    let c = config();
    let q = parse_query(r#"{(x) | x = "Crete"}"#).unwrap();
    let answers = evaluate(&q, &c).unwrap();
    assert_eq!(answers[0].values, ["crete"]);
}

/// Queries against empty result sets are fine.
#[test]
fn empty_answer_sets() {
    let c = config();
    // Nothing is south of Crete in the scenario.
    let q = parse_query("{(x, y) | y = Crete, x S y}").unwrap();
    assert!(evaluate(&q, &c).unwrap().is_empty());
}
